//! The named corpus registry: a directory of segments that consumers
//! (`gel-experiments`, `gel-serve`) open graphs through by name
//! instead of constructing them in-process.
//!
//! Layout is deliberately boring — one `<name>.seg` file per graph,
//! plus transient `<name>.wal` logs during ingest — so a registry is
//! inspectable with `ls` and rsync-able between machines. Names are
//! restricted to `[A-Za-z0-9._-]` (no path separators), which keeps
//! lookups from escaping the registry directory.

use std::io::{self, BufRead};
use std::path::{Path, PathBuf};

use gel_graph::Graph;

use crate::ingest::{build_segment_from_wal, wal_from_edge_list, IngestOptions, IngestStats};
use crate::segment::{read_meta, read_segment, write_segment, SegmentMeta};

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// A directory of named graph segments. See the module docs.
#[derive(Debug, Clone)]
pub struct Store {
    dir: PathBuf,
}

impl Store {
    /// Opens (creating if needed) the registry at `dir`.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Store> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(Store { dir })
    }

    /// The registry directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn check_name(name: &str) -> io::Result<()> {
        let ok = !name.is_empty()
            && name.len() <= 128
            && name.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
            && !name.starts_with('.');
        if ok {
            Ok(())
        } else {
            Err(bad(format!("invalid graph name {name:?}")))
        }
    }

    /// The segment path a name resolves to.
    pub fn segment_path(&self, name: &str) -> io::Result<PathBuf> {
        Self::check_name(name)?;
        Ok(self.dir.join(format!("{name}.seg")))
    }

    /// True when a segment named `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.segment_path(name).map(|p| p.is_file()).unwrap_or(false)
    }

    /// Registered graph names, sorted.
    pub fn list(&self) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let file = entry.file_name();
            let file = file.to_string_lossy();
            if let Some(name) = file.strip_suffix(".seg") {
                if Self::check_name(name).is_ok() {
                    names.push(name.to_string());
                }
            }
        }
        names.sort_unstable();
        Ok(names)
    }

    /// Persists `g` under `name` (atomic replace).
    pub fn put_graph(&self, name: &str, g: &Graph) -> io::Result<SegmentMeta> {
        let path = self.segment_path(name)?;
        write_segment(&path, g)?;
        read_meta(&path)
    }

    /// Loads the graph named `name`, verifying the segment checksum.
    pub fn open_graph(&self, name: &str) -> io::Result<Graph> {
        read_segment(&self.segment_path(name)?)
    }

    /// Header-only statistics of `name` — `n`, arc count, label
    /// dimension, symmetry — without reading the adjacency (this is
    /// what the sparse-lowering planner's density estimates consume).
    pub fn meta(&self, name: &str) -> io::Result<SegmentMeta> {
        read_meta(&self.segment_path(name)?)
    }

    /// Removes the segment named `name`.
    pub fn remove(&self, name: &str) -> io::Result<()> {
        std::fs::remove_file(self.segment_path(name)?)
    }

    /// Streams edge-list text into `name` through a write-ahead log in
    /// bounded memory: text → `<name>.wal` → out-of-core CSR build →
    /// `<name>.seg`. The log is deleted on success and left in place
    /// on failure (diagnosable, and recoverable via [`crate::Wal`]).
    pub fn ingest_edge_list(
        &self,
        name: &str,
        reader: impl BufRead,
        opts: IngestOptions,
    ) -> io::Result<IngestStats> {
        let seg = self.segment_path(name)?;
        let wal = self.dir.join(format!("{name}.wal"));
        wal_from_edge_list(reader, &wal)?;
        let stats = build_segment_from_wal(&wal, &seg, opts)?;
        std::fs::remove_file(&wal)?;
        Ok(stats)
    }

    /// Builds `name` from an already-written log (e.g. one streamed
    /// from a generator). The log is left in place.
    pub fn ingest_wal(
        &self,
        name: &str,
        wal_path: &Path,
        opts: IngestOptions,
    ) -> io::Result<IngestStats> {
        build_segment_from_wal(wal_path, &self.segment_path(name)?, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gel_graph::families;

    fn tmpstore(tag: &str) -> Store {
        let d = std::env::temp_dir().join(format!("gel-store-reg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        Store::open(d).unwrap()
    }

    #[test]
    fn put_list_open_remove() {
        let s = tmpstore("basic");
        let g = families::petersen();
        let h = families::cycle(6);
        s.put_graph("petersen", &g).unwrap();
        s.put_graph("c6", &h).unwrap();
        assert_eq!(s.list().unwrap(), vec!["c6", "petersen"]);
        assert!(s.contains("petersen") && !s.contains("absent"));
        assert_eq!(s.open_graph("petersen").unwrap(), g);
        assert_eq!(s.open_graph("c6").unwrap(), h);
        let m = s.meta("petersen").unwrap();
        assert_eq!((m.n, m.num_arcs, m.symmetric), (10, 30, true));
        s.remove("c6").unwrap();
        assert_eq!(s.list().unwrap(), vec!["petersen"]);
        let _ = std::fs::remove_dir_all(s.dir());
    }

    #[test]
    fn names_cannot_escape_the_directory() {
        let s = tmpstore("names");
        for bad in ["", "../oops", "a/b", "a\\b", ".hidden", "nul\0"] {
            assert!(s.segment_path(bad).is_err(), "{bad:?} must be rejected");
        }
        for good in ["ok", "social-2026", "cfi_pair.v1"] {
            assert!(s.segment_path(good).is_ok(), "{good:?} must be accepted");
        }
        let _ = std::fs::remove_dir_all(s.dir());
    }

    #[test]
    fn ingest_edge_list_end_to_end() {
        let s = tmpstore("ingest");
        let g = families::petersen();
        let text = gel_graph::io::to_edge_list(&g);
        let stats =
            s.ingest_edge_list("p", std::io::Cursor::new(text), IngestOptions::default()).unwrap();
        assert_eq!(stats.meta.num_arcs, g.num_arcs());
        assert_eq!(s.open_graph("p").unwrap(), g);
        assert!(!s.dir().join("p.wal").exists(), "ingest log is cleaned up on success");
        let _ = std::fs::remove_dir_all(s.dir());
    }
}
