//! The on-disk CSR segment format.
//!
//! A segment is the frozen, checksummed image of one [`Graph`], laid
//! out exactly like the in-memory CSR so reads and writes are straight
//! buffer copies and a graph round-trips through disk byte-identically
//! (`read(write(g)) == g`, including the `symmetric` flag). Everything
//! is little-endian with fixed-width fields:
//!
//! ```text
//! offset  size             field
//! 0       8                magic  b"GELSEG01"
//! 8       8                flags  (bit 0: symmetric arc relation)
//! 16      8                n          (u64 vertex count)
//! 24      8                label_dim  (u64)
//! 32      8                num_arcs   (u64, = m)
//! 40      (n+1)·4          out_off    (u32 CSR offsets)
//! …       m·4              out_adj    (u32 neighbour ids)
//! …       (n+1)·4          in_off
//! …       m·4              in_adj
//! …       n·label_dim·8    labels     (f64 bit patterns)
//! end−8   8                checksum   (FNV-1a 64 of all prior bytes)
//! ```
//!
//! The header is fixed-size, so [`read_meta`] fetches the statistics
//! the sparse-lowering planner wants (`n`, `m`, density) with one 40
//! byte read and no adjacency I/O. The trailing checksum makes torn or
//! bit-rotted segments fail loudly at open time instead of producing a
//! corrupt graph.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use gel_graph::Graph;

/// Segment magic + format version.
pub const SEGMENT_MAGIC: [u8; 8] = *b"GELSEG01";

const FLAG_SYMMETRIC: u64 = 1;

/// Fixed header size in bytes (magic through `num_arcs`).
pub const HEADER_BYTES: u64 = 40;

static SEGMENTS_WRITTEN: gel_obs::Counter = gel_obs::Counter::new("store.segments.written");
static SEGMENTS_OPENED: gel_obs::Counter = gel_obs::Counter::new("store.segments.opened");

/// The header statistics of a segment — everything the planner's nnz
/// estimation needs, readable without touching the adjacency sections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Vertex count `n`.
    pub n: usize,
    /// Label dimension `d`.
    pub label_dim: usize,
    /// Directed arc count `m`.
    pub num_arcs: usize,
    /// True when the arc relation is symmetric.
    pub symmetric: bool,
}

impl SegmentMeta {
    /// Arc density `m / n²` (0 for the empty graph) — the statistic the
    /// sparse-lowering cost model consumes.
    pub fn density(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.num_arcs as f64 / (self.n as f64 * self.n as f64)
        }
    }

    /// Total on-disk segment size implied by the header.
    pub fn file_bytes(&self) -> u64 {
        HEADER_BYTES
            + 2 * ((self.n as u64 + 1) * 4 + self.num_arcs as u64 * 4)
            + (self.n as u64 * self.label_dim as u64) * 8
            + 8
    }
}

/// Streaming FNV-1a 64 — the same checksum family the WAL uses.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Absorbs `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }

    /// The current digest.
    pub fn digest(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// A writer that tees every byte into an [`Fnv64`].
struct HashingWriter<W: Write> {
    inner: W,
    hash: Fnv64,
}

impl<W: Write> HashingWriter<W> {
    fn new(inner: W) -> Self {
        HashingWriter { inner, hash: Fnv64::new() }
    }
}

impl<W: Write> Write for HashingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let written = self.inner.write(buf)?;
        self.hash.update(&buf[..written]);
        Ok(written)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn write_u32s(w: &mut impl Write, xs: &[u32]) -> io::Result<()> {
    // 64 KiB staging buffer keeps syscall count low without scaling
    // with the section size.
    let mut buf = [0u8; 64 * 1024];
    for chunk in xs.chunks(buf.len() / 4) {
        for (i, &x) in chunk.iter().enumerate() {
            buf[i * 4..i * 4 + 4].copy_from_slice(&x.to_le_bytes());
        }
        w.write_all(&buf[..chunk.len() * 4])?;
    }
    Ok(())
}

fn read_u32s(r: &mut impl Read, n: usize) -> io::Result<Vec<u32>> {
    let mut out = Vec::with_capacity(n);
    let mut buf = [0u8; 64 * 1024];
    let mut left = n;
    while left > 0 {
        let take = left.min(buf.len() / 4);
        r.read_exact(&mut buf[..take * 4])?;
        out.extend(
            buf[..take * 4].chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())),
        );
        left -= take;
    }
    Ok(out)
}

fn write_f64s(w: &mut impl Write, xs: &[f64]) -> io::Result<()> {
    let mut buf = [0u8; 64 * 1024];
    for chunk in xs.chunks(buf.len() / 8) {
        for (i, &x) in chunk.iter().enumerate() {
            buf[i * 8..i * 8 + 8].copy_from_slice(&x.to_bits().to_le_bytes());
        }
        w.write_all(&buf[..chunk.len() * 8])?;
    }
    Ok(())
}

fn read_f64s(r: &mut impl Read, n: usize) -> io::Result<Vec<f64>> {
    let mut out = Vec::with_capacity(n);
    let mut buf = [0u8; 64 * 1024];
    let mut left = n;
    while left > 0 {
        let take = left.min(buf.len() / 8);
        r.read_exact(&mut buf[..take * 8])?;
        out.extend(
            buf[..take * 8]
                .chunks_exact(8)
                .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap()))),
        );
        left -= take;
    }
    Ok(out)
}

fn encode_header(meta: &SegmentMeta) -> [u8; HEADER_BYTES as usize] {
    let mut h = [0u8; HEADER_BYTES as usize];
    h[0..8].copy_from_slice(&SEGMENT_MAGIC);
    let flags = if meta.symmetric { FLAG_SYMMETRIC } else { 0 };
    h[8..16].copy_from_slice(&flags.to_le_bytes());
    h[16..24].copy_from_slice(&(meta.n as u64).to_le_bytes());
    h[24..32].copy_from_slice(&(meta.label_dim as u64).to_le_bytes());
    h[32..40].copy_from_slice(&(meta.num_arcs as u64).to_le_bytes());
    h
}

fn decode_header(h: &[u8; HEADER_BYTES as usize]) -> io::Result<SegmentMeta> {
    if h[0..8] != SEGMENT_MAGIC {
        return Err(bad("not a gel-store segment (bad magic)"));
    }
    let flags = u64::from_le_bytes(h[8..16].try_into().unwrap());
    let n = u64::from_le_bytes(h[16..24].try_into().unwrap());
    let label_dim = u64::from_le_bytes(h[24..32].try_into().unwrap());
    let num_arcs = u64::from_le_bytes(h[32..40].try_into().unwrap());
    if n > u32::MAX as u64 || num_arcs > u32::MAX as u64 || label_dim == 0 {
        return Err(bad("segment header out of range"));
    }
    Ok(SegmentMeta {
        n: n as usize,
        label_dim: label_dim as usize,
        num_arcs: num_arcs as usize,
        symmetric: flags & FLAG_SYMMETRIC != 0,
    })
}

/// Writes `g` as a segment at `path` (atomically replacing any
/// existing file via a sibling temp file + rename). Returns the
/// on-disk size in bytes.
pub fn write_segment(path: &Path, g: &Graph) -> io::Result<u64> {
    let meta = SegmentMeta {
        n: g.num_vertices(),
        label_dim: g.label_dim(),
        num_arcs: g.num_arcs(),
        symmetric: g.is_symmetric(),
    };
    let tmp = path.with_extension("seg.tmp");
    {
        let file = File::create(&tmp)?;
        let mut w = HashingWriter::new(BufWriter::new(file));
        w.write_all(&encode_header(&meta))?;
        let (out_off, out_adj) = g.csr_out();
        let (in_off, in_adj) = g.csr_in();
        write_u32s(&mut w, out_off)?;
        write_u32s(&mut w, out_adj)?;
        write_u32s(&mut w, in_off)?;
        write_u32s(&mut w, in_adj)?;
        write_f64s(&mut w, g.labels_flat())?;
        let digest = w.hash.digest();
        w.write_all(&digest.to_le_bytes())?;
        w.flush()?;
    }
    std::fs::rename(&tmp, path)?;
    SEGMENTS_WRITTEN.incr();
    Ok(meta.file_bytes())
}

/// Reads just the fixed header of the segment at `path`.
pub fn read_meta(path: &Path) -> io::Result<SegmentMeta> {
    let mut file = File::open(path)?;
    let mut h = [0u8; HEADER_BYTES as usize];
    file.read_exact(&mut h)?;
    decode_header(&h)
}

/// Reads the segment at `path` back into a [`Graph`], verifying the
/// trailing checksum and every CSR structural invariant.
pub fn read_segment(path: &Path) -> io::Result<Graph> {
    let file = File::open(path)?;
    let mut r = BufReader::new(file);
    let mut h = [0u8; HEADER_BYTES as usize];
    r.read_exact(&mut h)?;
    let meta = decode_header(&h)?;
    let mut hash = Fnv64::new();
    hash.update(&h);

    // Wrap subsequent section reads so the checksum covers them.
    struct HashingReader<'a, R: Read> {
        inner: R,
        hash: &'a mut Fnv64,
    }
    impl<R: Read> Read for HashingReader<'_, R> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = self.inner.read(buf)?;
            self.hash.update(&buf[..n]);
            Ok(n)
        }
    }
    let mut hr = HashingReader { inner: &mut r, hash: &mut hash };
    let out_off = read_u32s(&mut hr, meta.n + 1)?;
    let out_adj = read_u32s(&mut hr, meta.num_arcs)?;
    let in_off = read_u32s(&mut hr, meta.n + 1)?;
    let in_adj = read_u32s(&mut hr, meta.num_arcs)?;
    let labels = read_f64s(&mut hr, meta.n * meta.label_dim)?;
    let expect = hash.digest();

    let mut tail = [0u8; 8];
    r.read_exact(&mut tail)?;
    if u64::from_le_bytes(tail) != expect {
        return Err(bad("segment checksum mismatch (torn or corrupt file)"));
    }
    if r.read(&mut [0u8; 1])? != 0 {
        return Err(bad("trailing bytes after segment checksum"));
    }

    let g = std::panic::catch_unwind(move || {
        Graph::from_raw_parts(
            meta.n,
            meta.label_dim,
            out_off,
            out_adj,
            in_off,
            in_adj,
            labels,
            meta.symmetric,
        )
    })
    .map_err(|_| bad("segment checksum valid but CSR invariants violated"))?;
    SEGMENTS_OPENED.incr();
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gel_graph::families;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("gel-store-seg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn round_trip_is_identity() {
        let dir = tmpdir("rt");
        for (tag, g) in [
            ("petersen", families::petersen()),
            ("cycle", families::cycle(7)),
            ("labeled", families::path(4).with_labels(vec![1.0, -2.5, 0.0, 3.25], 1)),
        ] {
            let p = dir.join(format!("{tag}.seg"));
            write_segment(&p, &g).unwrap();
            assert_eq!(read_segment(&p).unwrap(), g, "{tag}");
            let m = read_meta(&p).unwrap();
            assert_eq!(m.n, g.num_vertices());
            assert_eq!(m.num_arcs, g.num_arcs());
            assert_eq!(m.symmetric, g.is_symmetric());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn directed_round_trip() {
        let dir = tmpdir("dir");
        let mut b = gel_graph::GraphBuilder::new(3);
        b.add_arc(0, 1).add_arc(2, 1);
        let g = b.build();
        let p = dir.join("d.seg");
        write_segment(&p, &g).unwrap();
        let back = read_segment(&p).unwrap();
        assert_eq!(back, g);
        assert!(!back.is_symmetric());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_detected() {
        let dir = tmpdir("corrupt");
        let p = dir.join("c.seg");
        write_segment(&p, &families::petersen()).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&p, &bytes).unwrap();
        assert!(read_segment(&p).is_err(), "flipped byte must fail the checksum");
        // Truncation is also caught.
        write_segment(&p, &families::petersen()).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() - 3]).unwrap();
        assert!(read_segment(&p).is_err(), "truncated segment must fail");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn meta_reports_density_and_size() {
        let dir = tmpdir("meta");
        let p = dir.join("m.seg");
        let g = families::cycle(10); // 10 vertices, 20 arcs
        let bytes = write_segment(&p, &g).unwrap();
        let m = read_meta(&p).unwrap();
        assert_eq!(m.density(), 20.0 / 100.0);
        assert_eq!(bytes, m.file_bytes());
        assert_eq!(std::fs::metadata(&p).unwrap().len(), bytes);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
