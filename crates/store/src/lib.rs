//! # gel-store — the persistent graph substrate
//!
//! DESIGN.md §11: million-edge graphs live on disk, not in the
//! process. This crate provides the three layers that make that work:
//!
//! * [`segment`] — frozen, checksummed on-disk CSR images with a
//!   fixed little-endian layout; a [`Graph`](gel_graph::Graph)
//!   round-trips through a segment byte-identically, and the fixed
//!   header exposes `n`/`m`/density to planners without adjacency
//!   I/O;
//! * [`wal`] — the framed, per-record-checksummed write-ahead
//!   ingestion log with torn-tail recovery; the log *is* the edge
//!   buffer during ingest, which is what keeps memory bounded;
//! * [`ingest`] — out-of-core CSR construction by chunked scatter
//!   passes over the log (`O(n)` bookkeeping + a byte-budgeted chunk,
//!   independent of the edge count), bit-compatible with
//!   `GraphBuilder`;
//! * [`registry`] — the named [`Store`] directory that
//!   `gel-experiments` and `gel-serve` open corpora through.
//!
//! The `--bench ingest` harness streams a synthetic multi-million-edge
//! R-MAT graph through this stack and gates edges/s plus the memory
//! bound in CI.

#![warn(missing_docs)]

pub mod ingest;
pub mod registry;
pub mod segment;
pub mod wal;

pub use ingest::{build_segment_from_wal, wal_from_edge_list, IngestOptions, IngestStats};
pub use registry::Store;
pub use segment::{read_meta, read_segment, write_segment, SegmentMeta};
pub use wal::{Wal, WalReader, WalRecord};
