//! Homomorphism counting from trees: `hom(T, G)` via dynamic
//! programming over a rooted tree, in `O(|T| · |E_G|)`.
//!
//! This powers the Dell–Grohe–Rattan characterisation the paper quotes
//! on slide 27: `G ≡_CR H` iff `hom(T, G) = hom(T, H)` for all trees
//! `T` — "GNNs 101 can only leverage tree-based information".

use gel_graph::{Graph, Vertex};

/// Checks that `t` is a tree (connected, `n − 1` undirected edges,
/// symmetric).
pub fn is_tree(t: &Graph) -> bool {
    let n = t.num_vertices();
    t.is_symmetric()
        && n >= 1
        && t.num_edges_undirected() == n - 1
        && t.connected_components().0 == 1
}

/// Counts homomorphisms from the tree `T` (unlabelled) into `G`.
///
/// Uses the standard leaf-to-root DP: for `T` rooted at `r`,
/// `h_t(u) = Π_{child s} Σ_{w ∈ N_G(u)} h_s(w)` and
/// `hom(T, G) = Σ_u h_r(u)`. Counts are returned as `f64`; they are
/// exact for counts below 2⁵³, far beyond anything in the corpus.
///
/// # Panics
/// Panics if `t` is not a tree.
pub fn hom_tree(t: &Graph, g: &Graph) -> f64 {
    assert!(is_tree(t), "pattern must be a tree");
    let nt = t.num_vertices();
    let ng = g.num_vertices();
    if nt == 0 || ng == 0 {
        return if nt == 0 { 1.0 } else { 0.0 };
    }
    // Root at 0; compute a post-order over the tree.
    let root: Vertex = 0;
    let mut parent = vec![u32::MAX; nt];
    let mut order = Vec::with_capacity(nt);
    let mut stack = vec![root];
    let mut seen = vec![false; nt];
    seen[root as usize] = true;
    while let Some(v) = stack.pop() {
        order.push(v);
        for &w in t.neighbors(v) {
            if !seen[w as usize] {
                seen[w as usize] = true;
                parent[w as usize] = v;
                stack.push(w);
            }
        }
    }
    // Process in reverse BFS order (children before parents).
    let mut h = vec![vec![1.0f64; ng]; nt];
    for &v in order.iter().rev() {
        // Multiply the parent's table by Σ_{w ∈ N_G(u)} h_v(w).
        if parent[v as usize] != u32::MAX {
            let p = parent[v as usize] as usize;
            let child_table = std::mem::take(&mut h[v as usize]);
            for (u, hp) in h[p].iter_mut().enumerate() {
                let s: f64 =
                    g.neighbors(u as Vertex).iter().map(|&w| child_table[w as usize]).sum();
                *hp *= s;
            }
        }
    }
    h[root as usize].iter().sum()
}

/// The vector `(hom(T₁, G), …, hom(T_m, G))` for a family of trees —
/// a truncated Lovász vector restricted to trees.
pub fn tree_hom_vector(trees: &[Graph], g: &Graph) -> Vec<f64> {
    trees.iter().map(|t| hom_tree(t, g)).collect()
}

/// Counts *rooted* homomorphisms `hom((T, r), (G, v))` for every
/// `v ∈ V_G`: maps sending the root `r = 0` of `T` to `v`. This is the
/// vertex-level analogue used for vertex-embedding experiments.
pub fn hom_tree_rooted(t: &Graph, g: &Graph) -> Vec<f64> {
    assert!(is_tree(t), "pattern must be a tree");
    let nt = t.num_vertices();
    let ng = g.num_vertices();
    let root: Vertex = 0;
    let mut parent = vec![u32::MAX; nt];
    let mut order = Vec::with_capacity(nt);
    let mut stack = vec![root];
    let mut seen = vec![false; nt];
    seen[root as usize] = true;
    while let Some(v) = stack.pop() {
        order.push(v);
        for &w in t.neighbors(v) {
            if !seen[w as usize] {
                seen[w as usize] = true;
                parent[w as usize] = v;
                stack.push(w);
            }
        }
    }
    let mut h = vec![vec![1.0f64; ng]; nt];
    for &v in order.iter().rev() {
        if parent[v as usize] != u32::MAX {
            let p = parent[v as usize] as usize;
            let child_table = std::mem::take(&mut h[v as usize]);
            for (u, hp) in h[p].iter_mut().enumerate() {
                let s: f64 =
                    g.neighbors(u as Vertex).iter().map(|&w| child_table[w as usize]).sum();
                *hp *= s;
            }
        }
    }
    std::mem::take(&mut h[root as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use gel_graph::families::{complete, cycle, path, star};

    #[test]
    fn single_vertex_tree_counts_vertices() {
        let t = path(1);
        assert_eq!(hom_tree(&t, &cycle(7)), 7.0);
    }

    #[test]
    fn edge_counts_arcs() {
        // hom(K2, G) = number of arcs = 2|E| for symmetric G.
        let t = path(2);
        assert_eq!(hom_tree(&t, &cycle(5)), 10.0);
        assert_eq!(hom_tree(&t, &complete(4)), 12.0);
    }

    #[test]
    fn path3_counts_walks_of_length_2() {
        // hom(P3, G) = Σ_v deg(v)² (walks of length 2).
        let g = star(3); // degrees 3,1,1,1
        assert_eq!(hom_tree(&path(3), &g), 9.0 + 1.0 + 1.0 + 1.0);
    }

    #[test]
    fn star_counts_degree_powers() {
        // hom(K_{1,3}, G) = Σ_v deg(v)³.
        let g = cycle(6);
        assert_eq!(hom_tree(&star(3), &g), 6.0 * 8.0);
    }

    #[test]
    fn rooted_sums_to_total() {
        let t = path(4);
        let g = complete(5);
        let rooted = hom_tree_rooted(&t, &g);
        let total: f64 = rooted.iter().sum();
        assert_eq!(total, hom_tree(&t, &g));
    }

    #[test]
    fn rooted_reflects_vertex_role() {
        // In a star target, center has many more rooted P2 homs than leaves.
        let g = star(4);
        let rooted = hom_tree_rooted(&path(2), &g);
        assert_eq!(rooted[0], 4.0);
        assert!(rooted[1..].iter().all(|&x| x == 1.0));
    }

    #[test]
    #[should_panic(expected = "pattern must be a tree")]
    fn rejects_non_tree_pattern() {
        let _ = hom_tree(&cycle(3), &complete(4));
    }

    #[test]
    fn is_tree_checks() {
        assert!(is_tree(&path(5)));
        assert!(is_tree(&star(3)));
        assert!(!is_tree(&cycle(4)));
        let forest = path(2).disjoint_union(&path(2));
        assert!(!is_tree(&forest));
    }
}
