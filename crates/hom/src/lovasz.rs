//! Lovász-style homomorphism vectors and profile comparison.
//!
//! Lovász's theorem says the full vector `(hom(F, G))_F` over all
//! graphs `F` determines `G` up to isomorphism; the paper's slide 27
//! uses the *tree-restricted* vector, which determines `G` exactly up
//! to colour-refinement equivalence (Dell–Grohe–Rattan). This module
//! packages truncated profiles over an arbitrary pattern family.

use gel_graph::Graph;

use crate::faq::hom_count;

/// A truncated homomorphism profile of a graph over a pattern family.
#[derive(Debug, Clone, PartialEq)]
pub struct HomProfile {
    /// `counts[i] = hom(patterns[i], G)`.
    pub counts: Vec<f64>,
}

impl HomProfile {
    /// Computes the profile of `g` over `patterns`.
    pub fn new(patterns: &[Graph], g: &Graph) -> Self {
        Self { counts: patterns.iter().map(|p| hom_count(p, g)).collect() }
    }

    /// Exact equality of two profiles (hom counts are integers stored
    /// exactly in `f64` at corpus scale).
    pub fn same_as(&self, other: &HomProfile) -> bool {
        self.counts == other.counts
    }

    /// Index of the first pattern whose counts differ, if any — a
    /// *witness* of distinguishability.
    pub fn first_difference(&self, other: &HomProfile) -> Option<usize> {
        self.counts.iter().zip(&other.counts).position(|(a, b)| a != b).or(
            if self.counts.len() != other.counts.len() {
                Some(self.counts.len().min(other.counts.len()))
            } else {
                None
            },
        )
    }
}

/// True iff `g` and `h` have identical hom counts from every pattern in
/// `patterns`.
pub fn hom_equivalent_over(patterns: &[Graph], g: &Graph, h: &Graph) -> bool {
    patterns.iter().all(|p| hom_count(p, g) == hom_count(p, h))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree_enum::free_trees_up_to;
    use gel_graph::families::{cr_blind_pair, cycle, path, union_of_cycles};

    #[test]
    fn profile_separates_c6_from_triangles_via_c3() {
        // Trees cannot separate the CR-blind pair, but C3 can.
        let (a, b) = cr_blind_pair();
        let patterns = vec![cycle(3)];
        assert!(!hom_equivalent_over(&patterns, &a, &b));
    }

    #[test]
    fn tree_profile_blind_on_cr_pair() {
        let (a, b) = cr_blind_pair();
        let trees = free_trees_up_to(6);
        assert!(hom_equivalent_over(&trees, &a, &b), "tree homs agree on CR-equivalent pair");
    }

    #[test]
    fn first_difference_witness() {
        let (a, b) = cr_blind_pair();
        let patterns = vec![path(2), path(3), cycle(3)];
        let pa = HomProfile::new(&patterns, &a);
        let pb = HomProfile::new(&patterns, &b);
        assert_eq!(pa.first_difference(&pb), Some(2), "C3 is the first witness");
        assert!(!pa.same_as(&pb));
    }

    #[test]
    fn profile_of_self_is_equal() {
        let g = union_of_cycles(&[4, 5]);
        let trees = free_trees_up_to(5);
        let p1 = HomProfile::new(&trees, &g);
        let p2 = HomProfile::new(&trees, &g);
        assert!(p1.same_as(&p2));
        assert_eq!(p1.first_difference(&p2), None);
    }
}
