//! Enumeration of all non-isomorphic free trees up to a given size.
//!
//! The Dell–Grohe–Rattan experiment (E2) quantifies over "all trees";
//! on a corpus of graphs with ≤ `n` vertices it suffices to check trees
//! up to a size bound. We enumerate free trees by generating rooted
//! trees via their canonical AHU encodings and deduplicating by the
//! centre-rooted canonical form.
//!
//! Counts (OEIS A000055): 1, 1, 1, 2, 3, 6, 11, 23, 47, 106 trees on
//! 1..=10 vertices — the tests pin these.

use std::collections::BTreeSet;

use gel_graph::{Graph, GraphBuilder, Vertex};

/// The AHU canonical code of the tree `t` rooted at `root`:
/// `code(v) = "(" + sorted(code(children)) + ")"`.
fn ahu_code(t: &Graph, root: Vertex) -> String {
    fn rec(t: &Graph, v: Vertex, parent: Option<Vertex>) -> String {
        let mut children: Vec<String> = t
            .neighbors(v)
            .iter()
            .filter(|&&w| Some(w) != parent)
            .map(|&w| rec(t, w, Some(v)))
            .collect();
        children.sort();
        format!("({})", children.concat())
    }
    rec(t, root, None)
}

/// The centre(s) of a tree: the 1 or 2 vertices minimizing
/// eccentricity, found by repeatedly stripping leaves.
fn tree_centers(t: &Graph) -> Vec<Vertex> {
    let n = t.num_vertices();
    if n <= 2 {
        return t.vertices().collect();
    }
    let mut degree: Vec<usize> = t.vertices().map(|v| t.degree(v)).collect();
    let mut layer: Vec<Vertex> = t.vertices().filter(|&v| degree[v as usize] <= 1).collect();
    let mut remaining = n;
    while remaining > 2 {
        remaining -= layer.len();
        let mut next = Vec::new();
        for &v in &layer {
            degree[v as usize] = 0;
            for &w in t.neighbors(v) {
                if degree[w as usize] > 1 {
                    degree[w as usize] -= 1;
                    if degree[w as usize] == 1 {
                        next.push(w);
                    }
                }
            }
        }
        layer = next;
    }
    layer
}

/// Canonical code of a *free* tree: the lexicographically smallest AHU
/// code over its centre(s).
pub fn free_tree_code(t: &Graph) -> String {
    tree_centers(t).into_iter().map(|c| ahu_code(t, c)).min().expect("non-empty tree")
}

/// Decodes an AHU code back into a tree (inverse of [`free_tree_code`]
/// up to isomorphism).
pub fn tree_from_code(code: &str) -> Graph {
    // Count vertices = number of '(' characters.
    let n = code.chars().filter(|&c| c == '(').count();
    let mut b = GraphBuilder::new(n);
    let mut stack: Vec<u32> = Vec::new();
    let mut next = 0u32;
    for c in code.chars() {
        match c {
            '(' => {
                if let Some(&parent) = stack.last() {
                    b.add_edge(parent, next);
                }
                stack.push(next);
                next += 1;
            }
            ')' => {
                stack.pop();
            }
            _ => panic!("invalid AHU code character {c:?}"),
        }
    }
    b.build()
}

/// All non-isomorphic free trees with exactly `n` vertices (`n ≥ 1`).
///
/// Generation: all trees on `n` vertices arise by attaching a new leaf
/// to some vertex of a tree on `n − 1` vertices; we apply this
/// exhaustively and deduplicate with the canonical code. Complexity is
/// fine for the `n ≤ 10` range the experiments need.
pub fn free_trees(n: usize) -> Vec<Graph> {
    assert!(n >= 1);
    let mut current: Vec<Graph> = vec![GraphBuilder::new(1).build()];
    for size in 2..=n {
        let mut seen = BTreeSet::new();
        let mut next_gen = Vec::new();
        for t in &current {
            for v in t.vertices() {
                let mut b = GraphBuilder::new(size);
                for (a, c) in t.edges_undirected() {
                    b.add_edge(a, c);
                }
                b.add_edge(v, (size - 1) as Vertex);
                let bigger = b.build();
                let code = free_tree_code(&bigger);
                if seen.insert(code) {
                    next_gen.push(bigger);
                }
            }
        }
        current = next_gen;
    }
    current
}

/// All non-isomorphic free trees with **at most** `n` vertices.
pub fn free_trees_up_to(n: usize) -> Vec<Graph> {
    (1..=n).flat_map(free_trees).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gel_graph::are_isomorphic;
    use gel_graph::families::{path, star};

    #[test]
    fn counts_match_oeis_a000055() {
        let expected = [1usize, 1, 1, 2, 3, 6, 11, 23];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(free_trees(i + 1).len(), e, "trees on {} vertices", i + 1);
        }
    }

    #[test]
    fn up_to_is_cumulative() {
        assert_eq!(free_trees_up_to(6).len(), 1 + 1 + 1 + 2 + 3 + 6);
    }

    #[test]
    fn codes_identify_isomorphic_trees() {
        // P4 written two ways.
        let mut b = GraphBuilder::new(4);
        b.add_edge(2, 0).add_edge(0, 3).add_edge(3, 1);
        let p = b.build();
        assert_eq!(free_tree_code(&p), free_tree_code(&path(4)));
        assert_ne!(free_tree_code(&star(3)), free_tree_code(&path(4)));
    }

    #[test]
    fn code_roundtrip_preserves_isomorphism() {
        for t in free_trees_up_to(7) {
            let rebuilt = tree_from_code(&free_tree_code(&t));
            assert!(are_isomorphic(&t, &rebuilt), "roundtrip changed the tree");
        }
    }

    #[test]
    fn enumerated_trees_are_pairwise_non_isomorphic() {
        let trees = free_trees(7);
        for i in 0..trees.len() {
            for j in (i + 1)..trees.len() {
                assert!(!are_isomorphic(&trees[i], &trees[j]));
            }
        }
    }

    #[test]
    fn all_enumerated_are_trees() {
        for t in free_trees_up_to(8) {
            assert!(crate::tree_hom::is_tree(&t));
        }
    }

    #[test]
    fn centers_of_path_and_star() {
        assert_eq!(tree_centers(&path(5)), vec![2]);
        assert_eq!(tree_centers(&path(4)).len(), 2);
        assert_eq!(tree_centers(&star(5)), vec![0]);
    }
}
