//! # gel-hom — homomorphism counting
//!
//! System S4 of DESIGN.md: the homomorphism-counting machinery behind
//! the paper's characterisation results.
//!
//! * [`tree_hom`] — `hom(T, G)` for trees via leaf-to-root DP, plus the
//!   rooted per-vertex variant (slide 27: CR-equivalence ⇔ equal tree
//!   hom counts, Dell–Grohe–Rattan);
//! * [`tree_enum`] — enumeration of all non-isomorphic free trees up to
//!   a size bound (the quantifier domain of experiment E2);
//! * [`faq`] — general `hom(P, G)` by FAQ-style variable elimination
//!   (the paper's slide-70 pointer to Khamis–Ngo–Rudra), exponential
//!   only in the pattern's induced width;
//! * [`subgraph`] — per-vertex walk / triangle / 4-cycle statistics,
//!   the regression targets of the approximation experiments (E5, E12);
//! * [`lovasz`] — truncated Lovász profiles over pattern families.

//! ```
//! use gel_hom::{hom_tree, hom_count, free_trees_up_to};
//! use gel_graph::families::{path, cycle, complete};
//!
//! // hom(K2, C5) counts arcs.
//! assert_eq!(hom_tree(&path(2), &cycle(5)), 10.0);
//! // The FAQ counter handles cyclic patterns: ordered triangles of K4.
//! assert_eq!(hom_count(&cycle(3), &complete(4)), 24.0);
//! // Quantifier domain of the Dell–Grohe–Rattan check (slide 27).
//! assert_eq!(free_trees_up_to(5).len(), 8);
//! ```

#![warn(missing_docs)]

pub mod faq;
pub mod lovasz;
pub mod subgraph;
pub mod tree_enum;
pub mod tree_hom;

pub use faq::{agm_log_bound, hom_count, min_degree_order, wco_order};
pub use lovasz::{hom_equivalent_over, HomProfile};
pub use tree_enum::{free_tree_code, free_trees, free_trees_up_to, tree_from_code};
pub use tree_hom::{hom_tree, hom_tree_rooted, is_tree, tree_hom_vector};
