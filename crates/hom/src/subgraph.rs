//! Subgraph and walk statistics used as regression targets in the
//! approximation experiments (E5, E12): per-vertex walk counts are
//! colour-refinement-invariant (learnable by MPNNs), per-vertex
//! triangle counts are not (provably unlearnable on CR-equivalent
//! pairs) — the contrast at the heart of the universality discussion
//! (slide 31).

use gel_graph::Graph;

/// Number of walks of length `len` starting at every vertex
/// (`len ≥ 0`; a walk may repeat vertices). Computed by repeated
/// adjacency application in `O(len · |E|)`.
pub fn walk_counts(g: &Graph, len: usize) -> Vec<f64> {
    let n = g.num_vertices();
    let mut cur = vec![1.0f64; n];
    for _ in 0..len {
        let mut next = vec![0.0f64; n];
        for v in 0..n as u32 {
            next[v as usize] = g.out_neighbors(v).iter().map(|&w| cur[w as usize]).sum();
        }
        cur = next;
    }
    cur
}

/// Number of closed walks of length `len` from each vertex back to
/// itself (`tr(A^len)` summed per-vertex); `counts[v] = (A^len)[v,v]`.
pub fn closed_walk_counts(g: &Graph, len: usize) -> Vec<f64> {
    let n = g.num_vertices();
    let mut counts = vec![0.0f64; n];
    for v in 0..n as u32 {
        // Row v of A^len via len sparse mat-vec products on the indicator.
        let mut row = vec![0.0f64; n];
        row[v as usize] = 1.0;
        for _ in 0..len {
            let mut next = vec![0.0f64; n];
            for u in 0..n as u32 {
                if row[u as usize] != 0.0 {
                    for &w in g.out_neighbors(u) {
                        next[w as usize] += row[u as usize];
                    }
                }
            }
            row = next;
        }
        counts[v as usize] = row[v as usize];
    }
    counts
}

/// Number of triangles through each vertex (symmetric graphs).
pub fn triangle_counts_per_vertex(g: &Graph) -> Vec<f64> {
    let n = g.num_vertices();
    let mut counts = vec![0.0f64; n];
    for u in 0..n as u32 {
        for &v in g.neighbors(u) {
            if v <= u {
                continue;
            }
            for &w in g.neighbors(v) {
                if w <= v {
                    continue;
                }
                if g.has_edge(u, w) {
                    counts[u as usize] += 1.0;
                    counts[v as usize] += 1.0;
                    counts[w as usize] += 1.0;
                }
            }
        }
    }
    counts
}

/// Count of (not necessarily induced) 4-cycles through each vertex,
/// computed from common-neighbour counts: vertex `v` lies on
/// `Σ_{w≠v} C(common(v,w), 2)` four-cycles.
pub fn four_cycle_counts_per_vertex(g: &Graph) -> Vec<f64> {
    let n = g.num_vertices();
    let mut counts = vec![0.0f64; n];
    for v in 0..n as u32 {
        for w in 0..n as u32 {
            if w == v {
                continue;
            }
            let common = g
                .neighbors(v)
                .iter()
                .filter(|&&x| x != w && g.neighbors(w).binary_search(&x).is_ok())
                .count() as f64;
            counts[v as usize] += common * (common - 1.0) / 2.0;
        }
    }
    // Each 4-cycle v–a–w–b–v through v is counted exactly once, by its
    // unique vertex w opposite to v on that cycle.
    counts
}

/// Per-vertex degree as `f64` (the simplest CR-invariant target).
pub fn degrees(g: &Graph) -> Vec<f64> {
    g.vertices().map(|v| g.degree(v) as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gel_graph::families::{complete, cycle, star};
    use gel_graph::GraphBuilder;

    #[test]
    fn walk_counts_on_cycle() {
        // On C_n every vertex has 2^len walks of length len.
        let g = cycle(5);
        assert_eq!(walk_counts(&g, 0), vec![1.0; 5]);
        assert_eq!(walk_counts(&g, 3), vec![8.0; 5]);
    }

    #[test]
    fn walk_counts_on_star() {
        let g = star(3);
        // Length 1: center 3, leaves 1.
        assert_eq!(walk_counts(&g, 1), vec![3.0, 1.0, 1.0, 1.0]);
        // Length 2: center 3 (out to leaf, back), leaf 3 (to center, out anywhere).
        assert_eq!(walk_counts(&g, 2), vec![3.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn closed_walks_count_triangles() {
        // (A³)[v,v] = 2 · triangles through v for simple graphs.
        let g = complete(4);
        let tri = triangle_counts_per_vertex(&g);
        let cw = closed_walk_counts(&g, 3);
        for v in 0..4 {
            assert_eq!(cw[v], 2.0 * tri[v]);
        }
    }

    #[test]
    fn triangle_counts_k4() {
        // Each vertex of K4 lies on C(3,2) = 3 triangles.
        assert_eq!(triangle_counts_per_vertex(&complete(4)), vec![3.0; 4]);
        assert_eq!(triangle_counts_per_vertex(&cycle(6)), vec![0.0; 6]);
    }

    #[test]
    fn four_cycles_on_c4_and_k4() {
        // C4: exactly one 4-cycle through every vertex.
        assert_eq!(four_cycle_counts_per_vertex(&cycle(4)), vec![1.0; 4]);
        // K4: every vertex lies on 3 four-cycles (choose the opposite vertex).
        assert_eq!(four_cycle_counts_per_vertex(&complete(4)), vec![3.0; 4]);
    }

    #[test]
    fn directed_walks_respect_orientation() {
        let mut b = GraphBuilder::new(3);
        b.add_arc(0, 1).add_arc(1, 2);
        let g = b.build();
        assert_eq!(walk_counts(&g, 2), vec![1.0, 0.0, 0.0]);
    }
}
