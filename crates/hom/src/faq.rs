//! General homomorphism counting by variable elimination, in the style
//! of FAQ — "Functional Aggregate Queries" (Khamis, Ngo, Rudra, PODS
//! 2016), which the paper points to on slide 70 when discussing how
//! functions and aggregations behave as semiring operators.
//!
//! `hom(P, G)` is the sum-product query
//! `Σ_{x₁…x_p} Π_{(a,b) ∈ E_P} A_G[x_a, x_b]`, evaluated by eliminating
//! one pattern variable at a time with a min-degree heuristic. The
//! running time is `O(p · n^{w+1})` where `w` is the induced width of
//! the elimination order — the treewidth connection the paper draws for
//! GEL fragments (slide 70, "semantic treewidth").

use std::collections::BTreeSet;

use gel_graph::{Graph, Vertex};

/// A dense factor over a set of pattern variables: `table` is indexed
/// mixed-radix by the assignments of `vars` (each ranging over
/// `0..n_g`), most-significant variable first.
#[derive(Debug, Clone)]
struct Factor {
    vars: Vec<u32>, // sorted pattern-variable ids
    table: Vec<f64>,
}

impl Factor {
    fn size_for(vars: &[u32], n: usize) -> usize {
        n.checked_pow(vars.len() as u32).expect("factor too large")
    }

    /// Index into the table for the given full assignment.
    fn index(&self, assign: &[u32], n: usize) -> usize {
        let mut idx = 0usize;
        for &v in &self.vars {
            idx = idx * n + assign[v as usize] as usize;
        }
        idx
    }
}

/// Multiplies all `factors` containing variable `var`, sums `var` out,
/// and returns the resulting factor.
fn eliminate(factors: Vec<Factor>, var: u32, n: usize) -> Vec<Factor> {
    let (with, without): (Vec<Factor>, Vec<Factor>) =
        factors.into_iter().partition(|f| f.vars.contains(&var));
    if with.is_empty() {
        // Free variable: summing it out multiplies by n.
        let mut rest = without;
        rest.push(Factor { vars: vec![], table: vec![n as f64] });
        return rest;
    }
    // Union of variables minus the eliminated one.
    let mut union: BTreeSet<u32> = BTreeSet::new();
    for f in &with {
        union.extend(f.vars.iter().copied());
    }
    union.remove(&var);
    let out_vars: Vec<u32> = union.into_iter().collect();
    let mut out =
        Factor { vars: out_vars.clone(), table: vec![0.0; Factor::size_for(&out_vars, n)] };

    // Enumerate assignments to out_vars × var.
    let max_var = with.iter().flat_map(|f| f.vars.iter()).copied().max().unwrap_or(0);
    let mut assign = vec![0u32; max_var as usize + 1];
    let out_size = out.table.len();
    for out_idx in 0..out_size {
        // Decode out_idx into assign over out_vars.
        let mut rest = out_idx;
        for &v in out.vars.iter().rev() {
            assign[v as usize] = (rest % n) as u32;
            rest /= n;
        }
        let mut acc = 0.0;
        for w in 0..n as u32 {
            assign[var as usize] = w;
            let mut prod = 1.0;
            for f in &with {
                prod *= f.table[f.index(&assign, n)];
                if prod == 0.0 {
                    break;
                }
            }
            acc += prod;
        }
        out.table[out_idx] = acc;
    }
    let mut rest = without;
    rest.push(out);
    rest
}

/// A min-degree elimination order for the pattern `p` (ties broken by
/// id). Returns the order and its induced width.
///
/// Thin wrapper over the shared planner
/// [`gel_graph::elim::min_degree_order_masked`] — the compiled GEL
/// evaluator's sparse sum-product kernel plans with the same function,
/// so the treewidth heuristic (and its deterministic tie-breaking)
/// lives in exactly one place.
pub fn min_degree_order(p: &Graph) -> (Vec<u32>, usize) {
    let n = p.num_vertices();
    // Moralized scopes: one 2-clique per (undirected) arc.
    let scopes: Vec<Vec<u32>> = p.arcs().filter(|(a, b)| a != b).map(|(a, b)| vec![a, b]).collect();
    gel_graph::elim::min_degree_order_masked(n, &scopes, &vec![true; n])
}

/// The deduplicated edge scopes of a pattern (self-loops excluded),
/// as variable pairs sorted within each scope — the hypergraph the
/// cover-bound and order helpers below reason over.
fn edge_scopes(p: &Graph) -> Vec<Vec<u32>> {
    let mut seen = BTreeSet::new();
    p.arcs()
        .filter(|(a, b)| a != b)
        .filter(|&(a, b)| seen.insert((a.min(b), a.max(b))))
        .map(|(a, b)| vec![a.min(b), a.max(b)])
        .collect()
}

/// Natural log of the AGM fractional-edge-cover bound on `hom(P, G)`:
/// every edge factor has at most `m = |E_G|` nonzeros, so
/// `hom(P, G) ≤ m^{ρ*(P)} · n^{iso}` where `ρ*` is the fractional
/// edge-cover number of `P` and `iso` counts its isolated vertices
/// (each ranges freely over `G`). The cover comes from the shared
/// planner [`gel_graph::elim::agm_cover_log_bound`] — the same
/// computation the compiled GEL evaluator uses to size and order its
/// worst-case-optimal multiway joins, so the bound quoted here and the
/// engine's `JoinWco` cost model can never drift apart.
pub fn agm_log_bound(p: &Graph, g: &Graph) -> f64 {
    let np = p.num_vertices();
    let scopes = edge_scopes(p);
    let mut covered = vec![false; np];
    for s in &scopes {
        for &v in s {
            covered[v as usize] = true;
        }
    }
    // Self-loop-only vertices are constrained (factor on one var with
    // ≤ n nonzeros); count them with the isolated ones at n each —
    // still an upper bound.
    let iso = covered.iter().filter(|&&c| !c).count();
    let m = (g.num_arcs().max(1)) as f64;
    let log_sizes = vec![m.ln(); scopes.len()];
    gel_graph::elim::agm_cover_log_bound(np, &scopes, &log_sizes)
        + iso as f64 * (g.num_vertices().max(1) as f64).ln()
}

/// A worst-case-optimal variable order for `hom(P, G)`: pattern
/// variables sorted by the size of their smallest incident edge
/// factor, ties by id — [`gel_graph::elim::wco_order_masked`], exactly
/// the order the GEL engine's `JoinWco` kernel intersects in. With
/// uniform adjacency factors this degenerates to id order over
/// non-isolated vertices (isolated ones sort last); it exists here so
/// a caller holding per-edge selectivities can see the shared policy.
pub fn wco_order(p: &Graph, g: &Graph) -> Vec<u32> {
    let scopes = edge_scopes(p);
    let sizes = vec![g.num_arcs().max(1) as f64; scopes.len()];
    gel_graph::elim::wco_order_masked(
        p.num_vertices(),
        &scopes,
        &sizes,
        &vec![true; p.num_vertices()],
    )
}

/// Counts homomorphisms from an arbitrary pattern `p` into `g`
/// (structure only; labels ignored). Both directed and undirected
/// patterns are supported: each arc of `p` contributes an adjacency
/// factor of `g`.
///
/// Cost is exponential only in the induced width of the elimination
/// order (≈ treewidth of `p`); patterns in the corpus have width ≤ 2.
pub fn hom_count(p: &Graph, g: &Graph) -> f64 {
    let np = p.num_vertices();
    let n = g.num_vertices();
    if np == 0 {
        return 1.0;
    }
    if n == 0 {
        return 0.0;
    }
    // Edge factors; deduplicate symmetric pairs into a single factor
    // only when both directions exist (A is symmetric then anyway).
    let mut factors: Vec<Factor> = Vec::new();
    let mut done = BTreeSet::new();
    for (a, b) in p.arcs() {
        if a == b {
            // Self-loop in the pattern: factor on one variable.
            let table: Vec<f64> =
                (0..n).map(|x| f64::from(g.has_edge(x as Vertex, x as Vertex))).collect();
            factors.push(Factor { vars: vec![a], table });
            continue;
        }
        let key = (a.min(b), a.max(b), p.has_edge(a, b) && p.has_edge(b, a));
        if key.2 && !done.insert((key.0, key.1)) {
            continue; // symmetric pair already added once
        }
        let (lo, hi) = (a.min(b), a.max(b));
        let mut table = vec![0.0; n * n];
        for x in 0..n as u32 {
            for y in 0..n as u32 {
                // Factor over sorted vars (lo, hi): entry (x, y) means lo=x, hi=y.
                let (va, vb) = if a == lo { (x, y) } else { (y, x) };
                let ok = if key.2 {
                    g.has_edge(va, vb) && g.has_edge(vb, va)
                } else {
                    g.has_edge(va, vb)
                };
                if ok {
                    table[x as usize * n + y as usize] = 1.0;
                }
            }
        }
        factors.push(Factor { vars: vec![lo, hi], table });
    }

    let (order, _) = min_degree_order(p);
    let mut current = factors;
    for v in order {
        current = eliminate(current, v, n);
    }
    current.into_iter().map(|f| f.table[0]).product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree_hom::hom_tree;
    use gel_graph::families::{complete, cycle, path, petersen, star};
    use gel_graph::GraphBuilder;

    #[test]
    fn agrees_with_tree_dp_on_trees() {
        let targets = [cycle(6), complete(4), petersen()];
        for t in [path(2), path(3), path(4), star(3)] {
            for g in &targets {
                assert_eq!(hom_count(&t, g), hom_tree(&t, g), "tree {t:?}");
            }
        }
    }

    #[test]
    fn cycle_homs_are_traces_of_adjacency_powers() {
        // hom(C_k, G) = tr(A^k). For G = C_n (n > k, k odd) the trace
        // is 0; for complete graphs tr(A^k) has a closed form.
        // hom(C3, K4): each triangle map = 4·3·2 = 24 ordered triangles.
        assert_eq!(hom_count(&cycle(3), &complete(4)), 24.0);
        // C5 into C5: 10 homs (5 rotations × 2 reflections).
        assert_eq!(hom_count(&cycle(5), &cycle(5)), 10.0);
        // Odd cycle into bipartite graph: none.
        assert_eq!(hom_count(&cycle(3), &cycle(6)), 0.0);
    }

    #[test]
    fn hom_into_k2() {
        // hom(C4, K2) = 2 (alternating maps).
        assert_eq!(hom_count(&cycle(4), &complete(2)), 2.0);
        // hom(C3, K2) = 0.
        assert_eq!(hom_count(&cycle(3), &complete(2)), 0.0);
    }

    #[test]
    fn disconnected_pattern_multiplies() {
        let p = path(2).disjoint_union(&path(2));
        let g = cycle(5);
        let single = hom_count(&path(2), &g);
        assert_eq!(hom_count(&p, &g), single * single);
    }

    #[test]
    fn triangle_count_relation() {
        // hom(C3, G) = 6 · (#triangles) for simple G.
        let g = petersen();
        assert_eq!(hom_count(&cycle(3), &g), 6.0 * g.triangle_count() as f64);
        let k5 = complete(5);
        assert_eq!(hom_count(&cycle(3), &k5), 6.0 * k5.triangle_count() as f64);
    }

    #[test]
    fn directed_pattern_counts_directed_homs() {
        // Directed 2-path a→b→c into a directed triangle 0→1→2→0: 3 homs.
        let mut bp = GraphBuilder::new(3);
        bp.add_arc(0, 1).add_arc(1, 2);
        let p = bp.build();
        let mut bg = GraphBuilder::new(3);
        bg.add_arc(0, 1).add_arc(1, 2).add_arc(2, 0);
        let g = bg.build();
        assert_eq!(hom_count(&p, &g), 3.0);
    }

    #[test]
    fn min_degree_width_of_cycle_is_two() {
        let (_, w) = min_degree_order(&cycle(8));
        assert_eq!(w, 2);
        let (_, wp) = min_degree_order(&path(8));
        assert_eq!(wp, 1);
        let (_, wk) = min_degree_order(&complete(5));
        assert_eq!(wk, 4);
    }

    /// `hom(P, G) ≤ exp(agm_log_bound(P, G))` across cyclic, acyclic,
    /// and disconnected patterns — and the bound is exact-order tight
    /// for the triangle into a complete graph (`m^{3/2}` vs `n³`-ish
    /// counts).
    #[test]
    fn agm_bound_dominates_hom_count() {
        let targets = [complete(5), cycle(6), petersen()];
        let patterns = [cycle(3), cycle(4), complete(4), path(4), star(3)];
        for g in &targets {
            for p in &patterns {
                let hom = hom_count(p, g);
                let bound = agm_log_bound(p, g).exp();
                assert!(hom <= bound * (1.0 + 1e-9), "hom={hom} exceeds AGM bound {bound}");
            }
        }
        // Triangle into K5: m = 20 directed arcs, half-cover gives
        // m^{3/2} ≈ 89.4; the count is 5·4·3 = 60 — the bound bites
        // (an edge-per-variable integral cover would give 20² = 400).
        let bound = agm_log_bound(&cycle(3), &complete(5)).exp();
        assert!(hom_count(&cycle(3), &complete(5)) == 60.0 && bound < 100.0);
    }

    /// Isolated pattern vertices multiply the bound by `n`, mirroring
    /// what they do to the count.
    #[test]
    fn agm_bound_counts_isolated_vertices() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1); // vertices 2 and 3 isolated
        let p = b.build();
        let g = complete(4);
        let hom = hom_count(&p, &g);
        let bound = agm_log_bound(&p, &g).exp();
        assert_eq!(hom, 12.0 * 16.0);
        assert!(hom <= bound * (1.0 + 1e-9));
    }

    /// The shared wco order covers every non-isolated pattern vertex
    /// exactly once, isolated ones last.
    #[test]
    fn wco_order_is_a_permutation_with_isolated_last() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2); // vertices 3, 4 isolated
        let p = b.build();
        let order = wco_order(&p, &complete(4));
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        assert!(order.iter().position(|&v| v == 3).unwrap() >= 3);
        assert!(order.iter().position(|&v| v == 4).unwrap() >= 3);
    }

    #[test]
    fn empty_pattern() {
        assert_eq!(hom_count(&GraphBuilder::new(0).build(), &cycle(4)), 1.0);
    }

    #[test]
    fn isolated_pattern_vertices_count_n() {
        // A pattern with 2 isolated vertices: n² homs.
        let p = GraphBuilder::new(2).build();
        assert_eq!(hom_count(&p, &cycle(5)), 25.0);
    }
}
