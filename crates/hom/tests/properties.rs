//! Property-based tests for homomorphism counting.

use gel_graph::families::{complete, path};
use gel_graph::random::erdos_renyi;
use gel_graph::{Graph, GraphBuilder};
use gel_hom::{free_trees_up_to, hom_count, hom_tree, hom_tree_rooted};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Brute-force hom counting by enumerating all maps (tiny instances).
fn brute_hom(p: &Graph, g: &Graph) -> f64 {
    let np = p.num_vertices();
    let ng = g.num_vertices();
    if np == 0 {
        return 1.0;
    }
    let mut count = 0u64;
    let total = (ng as u64).pow(np as u32);
    for idx in 0..total {
        let mut map = vec![0u32; np];
        let mut rest = idx;
        for slot in map.iter_mut() {
            *slot = (rest % ng as u64) as u32;
            rest /= ng as u64;
        }
        if p.arcs().all(|(a, b)| g.has_edge(map[a as usize], map[b as usize])) {
            count += 1;
        }
    }
    count as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn faq_matches_brute_force(seed in 0u64..2_000, np in 2usize..5, ng in 2usize..6) {
        let p = erdos_renyi(np, 0.6, &mut StdRng::seed_from_u64(seed));
        let g = erdos_renyi(ng, 0.5, &mut StdRng::seed_from_u64(seed + 1));
        prop_assert_eq!(hom_count(&p, &g), brute_hom(&p, &g));
    }

    #[test]
    fn tree_dp_matches_faq(seed in 0u64..2_000, ng in 2usize..9) {
        let g = erdos_renyi(ng, 0.5, &mut StdRng::seed_from_u64(seed));
        for t in free_trees_up_to(5) {
            prop_assert_eq!(hom_tree(&t, &g), hom_count(&t, &g));
        }
    }

    #[test]
    fn hom_monotone_in_target_edges(seed in 0u64..2_000, n in 3usize..8) {
        // Adding an edge to G can only increase hom counts.
        let g = erdos_renyi(n, 0.4, &mut StdRng::seed_from_u64(seed));
        // Find a non-edge; if none, skip.
        let mut non_edge = None;
        'outer: for u in g.vertices() {
            for v in g.vertices() {
                if u < v && !g.has_edge(u, v) {
                    non_edge = Some((u, v));
                    break 'outer;
                }
            }
        }
        if let Some((u, v)) = non_edge {
            let mut b = GraphBuilder::new(n);
            for (a, c) in g.arcs() {
                b.add_arc(a, c);
            }
            b.add_edge(u, v);
            let g_plus = b.build();
            for t in free_trees_up_to(4) {
                prop_assert!(hom_tree(&t, &g_plus) >= hom_tree(&t, &g));
            }
        }
    }

    #[test]
    fn rooted_sums_to_total(seed in 0u64..2_000, n in 2usize..9) {
        let g = erdos_renyi(n, 0.5, &mut StdRng::seed_from_u64(seed));
        for t in free_trees_up_to(5) {
            let rooted: f64 = hom_tree_rooted(&t, &g).iter().sum();
            prop_assert_eq!(rooted, hom_tree(&t, &g));
        }
    }

    #[test]
    fn path_into_complete_closed_form(k in 1usize..6, n in 2usize..7) {
        // hom(P_k, K_n) = n·(n−1)^{k−1}.
        let expect = n as f64 * ((n - 1) as f64).powi(k as i32 - 1);
        prop_assert_eq!(hom_tree(&path(k), &complete(n)), expect);
    }
}
