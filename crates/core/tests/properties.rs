//! Property-based tests for the language: evaluator consistency,
//! renaming laws, hashing, and the parser on the printable fragment.

use gel_graph::random::erdos_renyi;
use gel_lang::ast::build;
use gel_lang::eval::{eval, eval_with, EvalOptions};
use gel_lang::normal_form::{is_normal_form, to_normal_form};
use gel_lang::parser::parse;
use gel_lang::random_expr::{random_mpnn_graph, random_mpnn_vertex, RandomExprConfig};
use gel_lang::Agg;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The guard fast path is an optimization, never a semantic change.
    #[test]
    fn fast_path_is_semantics_preserving(seed in 0u64..3_000, n in 2usize..9) {
        let g = erdos_renyi(n, 0.5, &mut StdRng::seed_from_u64(seed));
        let mut rng = StdRng::seed_from_u64(seed + 1);
        let e = random_mpnn_graph(&RandomExprConfig::default(), &mut rng);
        let fast = eval_with(&e, &g, EvalOptions { guard_fast_path: true, ..EvalOptions::default() });
        let dense = eval_with(&e, &g, EvalOptions { guard_fast_path: false, ..EvalOptions::default() });
        prop_assert!(fast.approx_eq(&dense, 1e-9), "ablation changed semantics of {}", e);
    }

    /// Structural hashing: clones collide, evaluation is deterministic.
    #[test]
    fn structural_hash_stable(seed in 0u64..3_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let e = random_mpnn_vertex(&RandomExprConfig::default(), &mut rng);
        prop_assert_eq!(e.structural_hash(), e.clone().structural_hash());
        let g = erdos_renyi(6, 0.5, &mut StdRng::seed_from_u64(seed + 9));
        prop_assert!(eval(&e, &g).approx_eq(&eval(&e, &g), 0.0));
    }

    /// swap_vars is an involution and preserves validity.
    #[test]
    fn swap_vars_involutive(seed in 0u64..3_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let e = random_mpnn_vertex(&RandomExprConfig::default(), &mut rng);
        prop_assert_eq!(e.swap_vars(1, 2).swap_vars(1, 2), e.clone());
        e.swap_vars(1, 2).validate().expect("swap must preserve well-typedness");
    }

    /// Normalization of sum-only expressions preserves semantics.
    #[test]
    fn normal_form_preserves_semantics(seed in 0u64..3_000, n in 2usize..8) {
        let cfg = RandomExprConfig { aggregators: vec![Agg::Sum], ..Default::default() };
        let mut rng = StdRng::seed_from_u64(seed);
        let e = random_mpnn_vertex(&cfg, &mut rng);
        if let Some(nf) = to_normal_form(&e) {
            prop_assert!(is_normal_form(&nf));
            let g = erdos_renyi(n, 0.5, &mut StdRng::seed_from_u64(seed + 5));
            prop_assert!(eval(&e, &g).approx_eq(&eval(&nf, &g), 1e-8));
        }
    }

    /// Display → parse roundtrip on the printable fragment.
    #[test]
    fn printable_fragment_roundtrips(j in 0usize..2, grade in 1usize..4, scale in -3.0f64..3.0) {
        let inner = build::apply(
            gel_lang::Func::Scale(scale),
            vec![build::lab(j, 2)],
        );
        let e = build::nbr_agg(Agg::Sum, 1, 2, inner);
        let printed = e.to_string();
        let back = parse(&printed).unwrap();
        prop_assert_eq!(&back, &e);
        // And a nested aggregation with a different aggregator.
        let e2 = build::global_agg(Agg::Max, 1, build::nbr_agg(Agg::Mean, 1, 2,
            build::apply(gel_lang::Func::Concat, vec![build::lab(0, 2), build::constant(vec![grade as f64])])));
        let back2 = parse(&e2.to_string()).unwrap();
        prop_assert_eq!(&back2, &e2);
    }

    /// Evaluation respects the declared dimension.
    #[test]
    fn eval_dim_matches_declared(seed in 0u64..3_000, n in 2usize..7) {
        let mut rng = StdRng::seed_from_u64(seed);
        let e = random_mpnn_vertex(&RandomExprConfig::default(), &mut rng);
        let g = erdos_renyi(n, 0.4, &mut StdRng::seed_from_u64(seed + 2));
        let t = eval(&e, &g);
        prop_assert_eq!(t.dim(), e.dim());
        prop_assert_eq!(t.vars(), &[1u8][..]);
        prop_assert_eq!(t.num_cells(), n);
    }
}
