//! Embedding tables: the denotation of a GEL expression on a graph.
//!
//! An expression `φ` with free variables `x_{i₁} … x_{i_p}` and
//! dimension `d` denotes a p-vertex embedding
//! `ξ_φ : G → (V^p → ℝ^d)` (paper slide 42). On a fixed graph this is
//! a dense table over `V^p` of `ℝ^d` cells, stored row-major with
//! variables in ascending order.

use gel_graph::Vertex;

/// A variable identifier `x_1, x_2, …` (1-based to match the paper's
/// notation; the parser accepts `x1`, `x2`, …).
pub type Var = u8;

/// The value table of an expression on a fixed graph.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingTable {
    /// Free variables of the expression, sorted ascending.
    vars: Vec<Var>,
    /// Output dimension `d`.
    dim: usize,
    /// Number of vertices of the underlying graph.
    n: usize,
    /// Row-major data: the cell for assignment `(v_{i₁}, …, v_{i_p})`
    /// (variables in `vars` order) starts at
    /// `(Σ_j v_{i_j} · n^{p−1−j}) · dim`.
    data: Vec<f64>,
}

impl EmbeddingTable {
    /// Creates a zero-filled table.
    ///
    /// # Panics
    /// Panics if `vars` is not strictly ascending or the table size
    /// overflows.
    pub fn zeros(vars: Vec<Var>, dim: usize, n: usize) -> Self {
        assert!(vars.windows(2).all(|w| w[0] < w[1]), "vars must be strictly ascending");
        let cells = n.checked_pow(vars.len() as u32).expect("table too large");
        let data = vec![0.0; cells.checked_mul(dim).expect("table too large")];
        Self { vars, dim, n, data }
    }

    /// A table with no free variables holding a single cell (a graph
    /// embedding value).
    pub fn scalar_cell(value: Vec<f64>, n: usize) -> Self {
        Self { vars: Vec::new(), dim: value.len(), n, data: value }
    }

    /// Assembles a table from pre-computed parts. The compiled engine
    /// (crate::plan) builds its slabs outside the table and moves them
    /// in without a copy.
    ///
    /// # Panics
    /// Panics if `vars` is not strictly ascending or `data` does not
    /// hold exactly `n^p · dim` values.
    pub(crate) fn from_parts(vars: Vec<Var>, dim: usize, n: usize, data: Vec<f64>) -> Self {
        assert!(vars.windows(2).all(|w| w[0] < w[1]), "vars must be strictly ascending");
        let cells = n.checked_pow(vars.len() as u32).expect("table too large");
        assert_eq!(data.len(), cells.checked_mul(dim).expect("table too large"));
        Self { vars, dim, n, data }
    }

    /// An inert zero-cell placeholder (`dim = 0`); used by the compiled
    /// engine as the "no result yet" state of its output table.
    pub(crate) fn placeholder() -> Self {
        Self { vars: Vec::new(), dim: 0, n: 0, data: Vec::new() }
    }

    /// Moves the backing slab out, leaving the table empty. The engine
    /// recycles root slabs through its pool between evaluations.
    pub(crate) fn take_data(&mut self) -> Vec<f64> {
        std::mem::take(&mut self.data)
    }

    /// Restores a slab moved out with [`Self::take_data`].
    pub(crate) fn set_data(&mut self, data: Vec<f64>) {
        debug_assert_eq!(
            data.len(),
            self.n.pow(self.vars.len() as u32) * self.dim,
            "slab does not match the table's shape"
        );
        self.data = data;
    }

    /// Free variables (sorted).
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Output dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of vertices of the graph the table was computed on.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of cells (`n^p`).
    pub fn num_cells(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    /// Raw data access.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Flat cell index for an assignment given in `vars` order.
    #[inline]
    pub fn cell_index(&self, assignment: &[Vertex]) -> usize {
        debug_assert_eq!(assignment.len(), self.vars.len());
        let mut idx = 0usize;
        for &v in assignment {
            debug_assert!((v as usize) < self.n);
            idx = idx * self.n + v as usize;
        }
        idx
    }

    /// The cell for an assignment given in `vars` order.
    #[inline]
    pub fn cell(&self, assignment: &[Vertex]) -> &[f64] {
        let i = self.cell_index(assignment) * self.dim;
        &self.data[i..i + self.dim]
    }

    /// Mutable cell access.
    #[inline]
    pub fn cell_mut(&mut self, assignment: &[Vertex]) -> &mut [f64] {
        let i = self.cell_index(assignment) * self.dim;
        &mut self.data[i..i + self.dim]
    }

    /// The cell under a *global* assignment `env[var] = vertex` (env is
    /// indexed by variable id; entries for variables not in `vars` are
    /// ignored).
    #[inline]
    pub fn cell_env(&self, env: &[Vertex]) -> &[f64] {
        let mut idx = 0usize;
        for &var in &self.vars {
            idx = idx * self.n + env[var as usize] as usize;
        }
        let i = idx * self.dim;
        &self.data[i..i + self.dim]
    }

    /// For 1-variable tables: the per-vertex rows as a `n × dim` view.
    ///
    /// # Panics
    /// Panics unless the table has exactly one free variable.
    pub fn vertex_rows(&self) -> Vec<&[f64]> {
        assert_eq!(self.vars.len(), 1, "vertex_rows needs exactly one free variable");
        (0..self.n).map(|v| &self.data[v * self.dim..(v + 1) * self.dim]).collect()
    }

    /// For 0-variable tables: the single value.
    ///
    /// # Panics
    /// Panics unless the table is closed.
    pub fn value(&self) -> &[f64] {
        assert!(self.vars.is_empty(), "value() needs a closed expression");
        &self.data
    }

    /// True when the two tables agree entrywise within `tol` (same
    /// vars/dim required).
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.vars == other.vars
            && self.dim == other.dim
            && self.n == other.n
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol || (a.is_nan() && b.is_nan()))
    }

    /// The partition of cells by exact value — two assignments are in
    /// the same class iff their cells are bitwise equal. Returns dense
    /// class ids per cell. Used to compare an expression's separation
    /// behaviour with a WL colouring.
    pub fn value_partition(&self) -> Vec<u32> {
        let mut keys: Vec<Vec<u64>> = Vec::with_capacity(self.num_cells());
        for c in 0..self.num_cells() {
            keys.push(
                self.data[c * self.dim..(c + 1) * self.dim].iter().map(|x| x.to_bits()).collect(),
            );
        }
        let mut sorted: Vec<&Vec<u64>> = keys.iter().collect();
        sorted.sort();
        sorted.dedup();
        keys.iter().map(|k| sorted.binary_search(&k).expect("present") as u32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_round_trip() {
        let mut t = EmbeddingTable::zeros(vec![1, 3], 2, 4);
        t.cell_mut(&[2, 3]).copy_from_slice(&[5.0, 6.0]);
        assert_eq!(t.cell(&[2, 3]), &[5.0, 6.0]);
        assert_eq!(t.cell(&[3, 2]), &[0.0, 0.0]);
        assert_eq!(t.num_cells(), 16);
    }

    #[test]
    fn env_projection() {
        let mut t = EmbeddingTable::zeros(vec![2], 1, 3);
        t.cell_mut(&[1]).copy_from_slice(&[9.0]);
        // env indexed by var id: env[2] = 1; other slots ignored.
        let env = [7, 7, 1, 7];
        assert_eq!(t.cell_env(&env), &[9.0]);
    }

    #[test]
    fn closed_table() {
        let t = EmbeddingTable::scalar_cell(vec![1.0, 2.0], 5);
        assert_eq!(t.value(), &[1.0, 2.0]);
        assert!(t.vars().is_empty());
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_vars_rejected() {
        let _ = EmbeddingTable::zeros(vec![2, 1], 1, 3);
    }

    #[test]
    fn partition_groups_equal_cells() {
        let mut t = EmbeddingTable::zeros(vec![1], 1, 4);
        t.cell_mut(&[0]).copy_from_slice(&[1.0]);
        t.cell_mut(&[2]).copy_from_slice(&[1.0]);
        t.cell_mut(&[3]).copy_from_slice(&[7.0]);
        let p = t.value_partition();
        assert_eq!(p[0], p[2]);
        assert_eq!(p[1], p[1]);
        assert_ne!(p[0], p[1]);
        assert_ne!(p[0], p[3]);
    }

    #[test]
    fn approx_eq_tolerance() {
        let mut a = EmbeddingTable::zeros(vec![1], 1, 2);
        let mut b = EmbeddingTable::zeros(vec![1], 1, 2);
        a.cell_mut(&[0])[0] = 1.0;
        b.cell_mut(&[0])[0] = 1.0 + 1e-12;
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&b, 1e-15));
    }
}
