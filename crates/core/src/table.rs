//! Embedding tables: the denotation of a GEL expression on a graph.
//!
//! An expression `φ` with free variables `x_{i₁} … x_{i_p}` and
//! dimension `d` denotes a p-vertex embedding
//! `ξ_φ : G → (V^p → ℝ^d)` (paper slide 42). On a fixed graph this is
//! a dense table over `V^p` of `ℝ^d` cells, stored row-major with
//! variables in ascending order.

use gel_graph::Vertex;

/// A variable identifier `x_1, x_2, …` (1-based to match the paper's
/// notation; the parser accepts `x1`, `x2`, …).
pub type Var = u8;

/// The value table of an expression on a fixed graph.
///
/// Two representations share the struct: the default **dense** slab
/// over all `n^p` cells, and (when `coords` is `Some`) a **sparse**
/// coordinate list holding only the stored cells — `coords[i]` is the
/// flat cell index (strictly ascending) and `data[i·dim..(i+1)·dim]`
/// its value; absent cells are `+0.0^dim`. Sparse tables come out of
/// the compiled engine under
/// [`EvalOptions::sparse_output`](crate::eval::EvalOptions) and answer
/// point lookups through [`Self::probe_cell`]; the dense positional
/// accessors ([`Self::cell`], [`Self::value`], …) require a dense
/// table — call [`Self::densify`] (or [`Self::to_dense`]) first.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingTable {
    /// Free variables of the expression, sorted ascending.
    vars: Vec<Var>,
    /// Output dimension `d`.
    dim: usize,
    /// Number of vertices of the underlying graph.
    n: usize,
    /// Row-major data: the cell for assignment `(v_{i₁}, …, v_{i_p})`
    /// (variables in `vars` order) starts at
    /// `(Σ_j v_{i_j} · n^{p−1−j}) · dim`. For sparse tables, the
    /// packed values of the stored cells (in `coords` order).
    data: Vec<f64>,
    /// Sparse representation marker: the strictly ascending flat cell
    /// indices of the stored cells. `None` = dense.
    coords: Option<Vec<usize>>,
}

impl EmbeddingTable {
    /// Creates a zero-filled table.
    ///
    /// # Panics
    /// Panics if `vars` is not strictly ascending or the table size
    /// overflows.
    pub fn zeros(vars: Vec<Var>, dim: usize, n: usize) -> Self {
        assert!(vars.windows(2).all(|w| w[0] < w[1]), "vars must be strictly ascending");
        let cells = n.checked_pow(vars.len() as u32).expect("table too large");
        let data = vec![0.0; cells.checked_mul(dim).expect("table too large")];
        Self { vars, dim, n, data, coords: None }
    }

    /// A table with no free variables holding a single cell (a graph
    /// embedding value).
    pub fn scalar_cell(value: Vec<f64>, n: usize) -> Self {
        Self { vars: Vec::new(), dim: value.len(), n, data: value, coords: None }
    }

    /// Assembles a table from pre-computed parts. The compiled engine
    /// (crate::plan) builds its slabs outside the table and moves them
    /// in without a copy.
    ///
    /// # Panics
    /// Panics if `vars` is not strictly ascending or `data` does not
    /// hold exactly `n^p · dim` values.
    pub(crate) fn from_parts(vars: Vec<Var>, dim: usize, n: usize, data: Vec<f64>) -> Self {
        assert!(vars.windows(2).all(|w| w[0] < w[1]), "vars must be strictly ascending");
        let cells = n.checked_pow(vars.len() as u32).expect("table too large");
        assert_eq!(data.len(), cells.checked_mul(dim).expect("table too large"));
        Self { vars, dim, n, data, coords: None }
    }

    /// Assembles a *sparse* table from pre-computed parts: `coords` are
    /// the strictly ascending flat cell indices of the stored cells and
    /// `values` their packed `dim`-wide rows.
    ///
    /// # Panics
    /// Panics if `vars` is not strictly ascending, `coords` is not
    /// strictly ascending / in range, or `values` does not hold exactly
    /// `coords.len() · dim` entries.
    pub fn from_sparse_parts(
        vars: Vec<Var>,
        dim: usize,
        n: usize,
        coords: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        assert!(vars.windows(2).all(|w| w[0] < w[1]), "vars must be strictly ascending");
        let cells = n.checked_pow(vars.len() as u32).expect("table too large");
        assert!(coords.windows(2).all(|w| w[0] < w[1]), "coords must be strictly ascending");
        assert!(coords.last().is_none_or(|&c| c < cells), "coordinate out of range");
        assert_eq!(values.len(), coords.len().checked_mul(dim).expect("table too large"));
        Self { vars, dim, n, data: values, coords: Some(coords) }
    }

    /// An inert zero-cell placeholder (`dim = 0`); used by the compiled
    /// engine as the "no result yet" state of its output table.
    pub(crate) fn placeholder() -> Self {
        Self { vars: Vec::new(), dim: 0, n: 0, data: Vec::new(), coords: None }
    }

    /// Moves the backing slab out, leaving the table empty. The engine
    /// recycles root slabs through its pool between evaluations.
    pub(crate) fn take_data(&mut self) -> Vec<f64> {
        std::mem::take(&mut self.data)
    }

    /// Restores a slab moved out with [`Self::take_data`].
    pub(crate) fn set_data(&mut self, data: Vec<f64>) {
        debug_assert_eq!(
            data.len(),
            self.n.pow(self.vars.len() as u32) * self.dim,
            "slab does not match the table's shape"
        );
        self.data = data;
        self.coords = None;
    }

    /// Moves *both* backing buffers out (coordinate buffer empty for a
    /// dense table), leaving the table without storage. The engine
    /// recycles them through its pools between plans.
    pub(crate) fn take_storage(&mut self) -> (Vec<usize>, Vec<f64>) {
        (self.coords.take().unwrap_or_default(), std::mem::take(&mut self.data))
    }

    /// Installs sparse storage (the counterpart of [`Self::set_data`]
    /// for the sparse-output path). Shape checked in debug builds only
    /// — the engine's hot path calls this per evaluation.
    pub(crate) fn set_sparse(&mut self, coords: Vec<usize>, values: Vec<f64>) {
        debug_assert!(coords.windows(2).all(|w| w[0] < w[1]));
        debug_assert_eq!(values.len(), coords.len() * self.dim);
        self.data = values;
        self.coords = Some(coords);
    }

    /// True when the table is stored as a sparse coordinate list.
    pub fn is_sparse(&self) -> bool {
        self.coords.is_some()
    }

    /// Stored-cell count: the nonzero count for a sparse table, the
    /// full cell count for a dense one.
    pub fn nnz(&self) -> usize {
        match &self.coords {
            Some(c) => c.len(),
            None => self.num_cells(),
        }
    }

    /// The sparse coordinate array (`None` for dense tables).
    pub fn sparse_coords(&self) -> Option<&[usize]> {
        self.coords.as_deref()
    }

    /// Point lookup by assignment, valid for both representations:
    /// `None` means the cell is absent from a sparse table (i.e. an
    /// all-zero row); dense tables always return `Some`.
    pub fn probe_cell(&self, assignment: &[Vertex]) -> Option<&[f64]> {
        self.probe_flat(self.cell_index(assignment))
    }

    /// Point lookup by flat cell index (see [`Self::probe_cell`]).
    pub fn probe_flat(&self, cell: usize) -> Option<&[f64]> {
        match &self.coords {
            Some(coords) => coords
                .binary_search(&cell)
                .ok()
                .map(|i| &self.data[i * self.dim..(i + 1) * self.dim]),
            None => Some(&self.data[cell * self.dim..(cell + 1) * self.dim]),
        }
    }

    /// Scatters a sparse table into the dense layout in place (no-op
    /// when already dense). Allocates the full `n^p · dim` slab.
    pub fn densify(&mut self) {
        let Some(coords) = self.coords.take() else { return };
        let values = std::mem::take(&mut self.data);
        let cells = self.n.checked_pow(self.vars.len() as u32).expect("table too large");
        let mut data = vec![0.0; cells.checked_mul(self.dim).expect("table too large")];
        for (i, &c) in coords.iter().enumerate() {
            data[c * self.dim..(c + 1) * self.dim]
                .copy_from_slice(&values[i * self.dim..(i + 1) * self.dim]);
        }
        self.data = data;
    }

    /// A densified copy (the original stays untouched).
    pub fn to_dense(&self) -> Self {
        let mut t = self.clone();
        t.densify();
        t
    }

    /// Free variables (sorted).
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Output dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of vertices of the graph the table was computed on.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of cells (`n^p`).
    pub fn num_cells(&self) -> usize {
        match &self.coords {
            Some(_) => self.n.checked_pow(self.vars.len() as u32).expect("table too large"),
            None => self.data.len().checked_div(self.dim).unwrap_or(0),
        }
    }

    /// Raw data access: the dense slab, or (sparse) the packed stored
    /// rows in [`Self::sparse_coords`] order.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Flat cell index for an assignment given in `vars` order.
    #[inline]
    pub fn cell_index(&self, assignment: &[Vertex]) -> usize {
        debug_assert_eq!(assignment.len(), self.vars.len());
        let mut idx = 0usize;
        for &v in assignment {
            debug_assert!((v as usize) < self.n);
            idx = idx * self.n + v as usize;
        }
        idx
    }

    /// The cell for an assignment given in `vars` order.
    ///
    /// # Panics
    /// Panics on sparse tables (positional indexing does not apply) —
    /// use [`Self::probe_cell`] or [`Self::densify`] instead.
    #[inline]
    pub fn cell(&self, assignment: &[Vertex]) -> &[f64] {
        assert!(self.coords.is_none(), "cell() needs a dense table; densify first");
        let i = self.cell_index(assignment) * self.dim;
        &self.data[i..i + self.dim]
    }

    /// Mutable cell access.
    #[inline]
    pub fn cell_mut(&mut self, assignment: &[Vertex]) -> &mut [f64] {
        debug_assert!(self.coords.is_none(), "cell_mut() needs a dense table");
        let i = self.cell_index(assignment) * self.dim;
        &mut self.data[i..i + self.dim]
    }

    /// The cell under a *global* assignment `env[var] = vertex` (env is
    /// indexed by variable id; entries for variables not in `vars` are
    /// ignored).
    #[inline]
    pub fn cell_env(&self, env: &[Vertex]) -> &[f64] {
        debug_assert!(self.coords.is_none(), "cell_env() needs a dense table");
        let mut idx = 0usize;
        for &var in &self.vars {
            idx = idx * self.n + env[var as usize] as usize;
        }
        let i = idx * self.dim;
        &self.data[i..i + self.dim]
    }

    /// For 1-variable tables: the per-vertex rows as a `n × dim` view.
    ///
    /// # Panics
    /// Panics unless the table has exactly one free variable.
    pub fn vertex_rows(&self) -> Vec<&[f64]> {
        assert_eq!(self.vars.len(), 1, "vertex_rows needs exactly one free variable");
        assert!(self.coords.is_none(), "vertex_rows() needs a dense table; densify first");
        (0..self.n).map(|v| &self.data[v * self.dim..(v + 1) * self.dim]).collect()
    }

    /// For 0-variable tables: the single value.
    ///
    /// # Panics
    /// Panics unless the table is closed.
    pub fn value(&self) -> &[f64] {
        assert!(self.vars.is_empty(), "value() needs a closed expression");
        assert!(self.coords.is_none(), "value() needs a dense table; densify first");
        &self.data
    }

    /// True when the two tables agree entrywise within `tol` (same
    /// vars/dim required). Representation-agnostic: a sparse table
    /// equals the dense table it would densify to (absent cells read
    /// as `+0.0`).
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        if self.vars != other.vars || self.dim != other.dim || self.n != other.n {
            return false;
        }
        if self.coords.is_none() && other.coords.is_none() {
            return self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol || (a.is_nan() && b.is_nan()));
        }
        static ZEROS: [f64; 64] = [0.0; 64];
        let zeros = vec![0.0; self.dim.saturating_sub(ZEROS.len())];
        let zero_row = if self.dim <= ZEROS.len() { &ZEROS[..self.dim] } else { &zeros[..] };
        (0..self.num_cells()).all(|c| {
            let a = self.probe_flat(c).unwrap_or(zero_row);
            let b = other.probe_flat(c).unwrap_or(zero_row);
            a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol || (x.is_nan() && y.is_nan()))
        })
    }

    /// The partition of cells by exact value — two assignments are in
    /// the same class iff their cells are bitwise equal. Returns dense
    /// class ids per cell. Used to compare an expression's separation
    /// behaviour with a WL colouring.
    pub fn value_partition(&self) -> Vec<u32> {
        let zero_row = vec![0.0f64; self.dim];
        let mut keys: Vec<Vec<u64>> = Vec::with_capacity(self.num_cells());
        for c in 0..self.num_cells() {
            let row = self.probe_flat(c).unwrap_or(&zero_row);
            keys.push(row.iter().map(|x| x.to_bits()).collect());
        }
        let mut sorted: Vec<&Vec<u64>> = keys.iter().collect();
        sorted.sort();
        sorted.dedup();
        keys.iter().map(|k| sorted.binary_search(&k).expect("present") as u32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_round_trip() {
        let mut t = EmbeddingTable::zeros(vec![1, 3], 2, 4);
        t.cell_mut(&[2, 3]).copy_from_slice(&[5.0, 6.0]);
        assert_eq!(t.cell(&[2, 3]), &[5.0, 6.0]);
        assert_eq!(t.cell(&[3, 2]), &[0.0, 0.0]);
        assert_eq!(t.num_cells(), 16);
    }

    #[test]
    fn env_projection() {
        let mut t = EmbeddingTable::zeros(vec![2], 1, 3);
        t.cell_mut(&[1]).copy_from_slice(&[9.0]);
        // env indexed by var id: env[2] = 1; other slots ignored.
        let env = [7, 7, 1, 7];
        assert_eq!(t.cell_env(&env), &[9.0]);
    }

    #[test]
    fn closed_table() {
        let t = EmbeddingTable::scalar_cell(vec![1.0, 2.0], 5);
        assert_eq!(t.value(), &[1.0, 2.0]);
        assert!(t.vars().is_empty());
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_vars_rejected() {
        let _ = EmbeddingTable::zeros(vec![2, 1], 1, 3);
    }

    #[test]
    fn partition_groups_equal_cells() {
        let mut t = EmbeddingTable::zeros(vec![1], 1, 4);
        t.cell_mut(&[0]).copy_from_slice(&[1.0]);
        t.cell_mut(&[2]).copy_from_slice(&[1.0]);
        t.cell_mut(&[3]).copy_from_slice(&[7.0]);
        let p = t.value_partition();
        assert_eq!(p[0], p[2]);
        assert_eq!(p[1], p[1]);
        assert_ne!(p[0], p[1]);
        assert_ne!(p[0], p[3]);
    }

    #[test]
    fn approx_eq_tolerance() {
        let mut a = EmbeddingTable::zeros(vec![1], 1, 2);
        let mut b = EmbeddingTable::zeros(vec![1], 1, 2);
        a.cell_mut(&[0])[0] = 1.0;
        b.cell_mut(&[0])[0] = 1.0 + 1e-12;
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&b, 1e-15));
    }

    #[test]
    fn sparse_probe_and_densify() {
        // vars [1,3], dim 2, n = 3: cells are x1*3 + x3.
        let coords = vec![1, 5, 7];
        let values = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut t = EmbeddingTable::from_sparse_parts(vec![1, 3], 2, 3, coords, values);
        assert!(t.is_sparse());
        assert_eq!(t.nnz(), 3);
        assert_eq!(t.num_cells(), 9);
        assert_eq!(t.probe_flat(5), Some(&[3.0, 4.0][..]));
        assert_eq!(t.probe_flat(4), None);
        assert_eq!(t.probe_cell(&[0, 1]), Some(&[1.0, 2.0][..]));
        assert_eq!(t.probe_cell(&[2, 2]), None);
        let dense = t.to_dense();
        assert!(!dense.is_sparse());
        assert_eq!(dense.cell(&[2, 1]), &[5.0, 6.0]);
        assert_eq!(dense.cell(&[0, 0]), &[0.0, 0.0]);
        assert!(t.approx_eq(&dense, 0.0));
        assert!(dense.approx_eq(&t, 0.0));
        t.densify();
        assert!(!t.is_sparse());
        assert_eq!(t, dense);
    }

    #[test]
    fn sparse_dense_approx_eq_detects_mismatch() {
        let mut dense = EmbeddingTable::zeros(vec![2], 1, 4);
        dense.cell_mut(&[1])[0] = 2.0;
        let same = EmbeddingTable::from_sparse_parts(vec![2], 1, 4, vec![1], vec![2.0]);
        assert!(same.approx_eq(&dense, 0.0));
        // A sparse table that misses the nonzero cell must not compare
        // equal, nor one with an extra nonzero.
        let empty = EmbeddingTable::from_sparse_parts(vec![2], 1, 4, vec![], vec![]);
        assert!(!empty.approx_eq(&dense, 1e-9));
        let extra = EmbeddingTable::from_sparse_parts(vec![2], 1, 4, vec![1, 3], vec![2.0, 1.0]);
        assert!(!extra.approx_eq(&dense, 1e-9));
        // Sparse × sparse with different supports but equal function.
        let zeroed = EmbeddingTable::from_sparse_parts(vec![2], 1, 4, vec![1, 3], vec![2.0, 0.0]);
        assert!(zeroed.approx_eq(&same, 0.0));
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn sparse_unsorted_coords_rejected() {
        let _ = EmbeddingTable::from_sparse_parts(vec![1], 1, 4, vec![2, 1], vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "densify first")]
    fn sparse_positional_access_rejected() {
        let t = EmbeddingTable::from_sparse_parts(vec![1], 1, 4, vec![1], vec![1.0]);
        let _ = t.cell(&[1]);
    }
}
