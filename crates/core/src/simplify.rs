//! An algebraic simplifier for `GEL(Ω,Θ)` expressions — the query
//! optimizer a "specialized graph embedding language" (paper slide 3)
//! deserves. Rewrites are semantics-preserving (property-tested) and
//! never leave the fragment the expression started in:
//!
//! * identity activations, unary `Concat`/`Add`/`Mul` wrappers and
//!   `Scale(1)` are removed;
//! * nested `Concat` is flattened;
//! * `Scale(a)` of `Scale(b)` folds to `Scale(a·b)`; `Scale(0)` folds
//!   to a constant zero when the expression is closed under the same
//!   free variables... (kept conservative: only when arg is `Const`);
//! * `Linear` applied to `Linear` composes the matrices;
//! * function applications whose arguments are all `Const` fold to a
//!   `Const`.

use gel_tensor::Activation;

use crate::ast::Expr;
use crate::func::Func;

/// Simplifies an expression bottom-up until a fixed point (bounded by
/// expression size). The result is semantically identical on every
/// graph and belongs to the same or a smaller fragment.
pub fn simplify(expr: &Expr) -> Expr {
    let mut cur = expr.clone();
    // Each pass strictly shrinks the size or leaves the tree unchanged,
    // so size(expr) passes suffice.
    for _ in 0..expr.size() {
        let next = pass(&cur);
        if next == cur {
            break;
        }
        cur = next;
    }
    cur
}

fn pass(expr: &Expr) -> Expr {
    match expr {
        Expr::Label { .. }
        | Expr::LabelVec { .. }
        | Expr::Edge { .. }
        | Expr::Cmp { .. }
        | Expr::Const { .. } => expr.clone(),
        Expr::Apply { func, args } => {
            let args: Vec<Expr> = args.iter().map(pass).collect();
            simplify_apply(func, args)
        }
        Expr::Aggregate { agg, over, value, guard } => Expr::Aggregate {
            agg: *agg,
            over: over.clone(),
            value: Box::new(pass(value)),
            guard: guard.as_ref().map(|g| Box::new(pass(g))),
        },
        // The optimizer rewrites trees; drop the sharing wrapper.
        Expr::Shared(e) => pass(e),
    }
}

fn all_const(args: &[Expr]) -> Option<Vec<f64>> {
    let mut flat = Vec::new();
    for a in args {
        match a {
            Expr::Const { values } => flat.extend_from_slice(values),
            _ => return None,
        }
    }
    Some(flat)
}

fn simplify_apply(func: &Func, args: Vec<Expr>) -> Expr {
    // Constant folding: every function is pure.
    if let Some(flat) = all_const(&args) {
        if func.out_dim(flat.len()).is_some() {
            let mut out = Vec::new();
            func.apply(&flat, &mut out);
            return Expr::Const { values: out };
        }
    }

    match func {
        // Identity activation is a no-op on a single argument.
        Func::Act(Activation::Identity) if args.len() == 1 => args.into_iter().next().unwrap(),
        // Unary Concat / Add / Mul wrappers are no-ops.
        Func::Concat if args.len() == 1 => args.into_iter().next().unwrap(),
        Func::Add { arity: 1, .. } | Func::Mul { arity: 1, .. } if args.len() == 1 => {
            args.into_iter().next().unwrap()
        }
        // Flatten nested Concat.
        Func::Concat => {
            let mut flat = Vec::with_capacity(args.len());
            for a in args {
                match a {
                    Expr::Apply { func: Func::Concat, args: inner } => flat.extend(inner),
                    other => flat.push(other),
                }
            }
            if flat.len() == 1 {
                flat.into_iter().next().unwrap()
            } else {
                Expr::Apply { func: Func::Concat, args: flat }
            }
        }
        // Scale folding.
        Func::Scale(s) => {
            if (*s - 1.0).abs() == 0.0 && args.len() == 1 {
                return args.into_iter().next().unwrap();
            }
            if args.len() == 1 {
                if let Expr::Apply { func: Func::Scale(t), args: inner } = &args[0] {
                    return Expr::Apply { func: Func::Scale(s * t), args: inner.clone() };
                }
            }
            Expr::Apply { func: Func::Scale(*s), args }
        }
        // Linear ∘ Linear composes: L₂(L₁(x)) = x·(W₁W₂) + (b₁W₂ + b₂).
        Func::Linear { weights: w2, bias: b2 } => {
            if args.len() == 1 {
                if let Expr::Apply { func: Func::Linear { weights: w1, bias: b1 }, args: inner } =
                    &args[0]
                {
                    if w1.cols() == w2.rows() {
                        let w = w1.matmul(w2);
                        let mut b = b2.clone();
                        for (i, &b1i) in b1.iter().enumerate() {
                            for (bj, &w2ij) in b.iter_mut().zip(w2.row(i)) {
                                *bj += b1i * w2ij;
                            }
                        }
                        return Expr::Apply {
                            func: Func::Linear { weights: w, bias: b },
                            args: inner.clone(),
                        };
                    }
                }
            }
            Expr::Apply { func: func.clone(), args }
        }
        _ => Expr::Apply { func: func.clone(), args },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::build::*;
    use crate::eval::eval;
    use crate::func::Agg;
    use gel_graph::families::{cycle, path, star};
    use gel_tensor::Matrix;

    fn assert_preserves(e: &Expr) {
        let s = simplify(e);
        assert!(s.size() <= e.size(), "simplify must not grow: {e} → {s}");
        for g in [path(4), star(3), cycle(5)] {
            let a = eval(e, &g);
            let b = eval(&s, &g);
            assert!(a.approx_eq(&b, 1e-9), "semantics changed: {e} vs {s}");
        }
        s.validate().expect("simplified expression must stay well-typed");
    }

    #[test]
    fn identity_activation_removed() {
        let e = apply(Func::Act(Activation::Identity), vec![lab(0, 1)]);
        assert_eq!(simplify(&e), lab(0, 1));
        assert_preserves(&e);
    }

    #[test]
    fn nested_concat_flattened() {
        let inner = apply(Func::Concat, vec![lab(0, 1), lab(0, 1)]);
        let e = apply(Func::Concat, vec![inner, lab(0, 1)]);
        let s = simplify(&e);
        if let Expr::Apply { func: Func::Concat, args } = &s {
            assert_eq!(args.len(), 3);
        } else {
            panic!("expected flat concat, got {s}");
        }
        assert_preserves(&e);
    }

    #[test]
    fn scale_chain_folds() {
        let e = apply(Func::Scale(2.0), vec![apply(Func::Scale(3.0), vec![lab(0, 1)])]);
        let s = simplify(&e);
        assert_eq!(s, apply(Func::Scale(6.0), vec![lab(0, 1)]));
        assert_preserves(&e);
        // Scale(1) disappears entirely.
        let one = apply(Func::Scale(1.0), vec![lab(0, 1)]);
        assert_eq!(simplify(&one), lab(0, 1));
    }

    #[test]
    fn linear_composition() {
        let l1 = Func::Linear {
            weights: Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]),
            bias: vec![1.0, -1.0],
        };
        let l2 = Func::Linear { weights: Matrix::from_rows(&[&[1.0], &[1.0]]), bias: vec![10.0] };
        let inner = apply(l1, vec![lab(0, 1), lab(0, 1)]);
        let e = apply(l2, vec![inner]);
        let s = simplify(&e);
        assert!(s.size() < e.size(), "composition must shrink the tree");
        assert_preserves(&e);
    }

    #[test]
    fn constants_fold() {
        let e =
            apply(Func::Add { arity: 2, dim: 1 }, vec![constant(vec![2.0]), constant(vec![3.0])]);
        assert_eq!(simplify(&e), constant(vec![5.0]));
        let e2 = relu(constant(vec![-4.0]));
        assert_eq!(simplify(&e2), constant(vec![0.0]));
    }

    #[test]
    fn aggregations_simplified_recursively() {
        let body = apply(Func::Act(Activation::Identity), vec![lab(0, 2)]);
        let e = nbr_agg(Agg::Sum, 1, 2, body);
        let s = simplify(&e);
        assert_eq!(s, nbr_agg(Agg::Sum, 1, 2, lab(0, 2)));
        assert_preserves(&e);
    }

    #[test]
    fn simplify_stays_in_fragment() {
        use crate::analysis::{analyze, Fragment};
        let e = nbr_agg(Agg::Sum, 1, 2, apply(Func::Act(Activation::Identity), vec![lab(0, 2)]));
        assert_eq!(analyze(&simplify(&e)).fragment, Fragment::Mpnn);
    }

    #[test]
    fn architectures_shrink_under_simplification() {
        use crate::architectures::{gnn101_vertex_expr, Gnn101Layer};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(4);
        let layers = vec![
            Gnn101Layer::random(1, 3, Activation::ReLU, &mut rng),
            Gnn101Layer::random(3, 2, Activation::ReLU, &mut rng),
        ];
        let e = gnn101_vertex_expr(&layers, 1);
        assert_preserves(&e);
    }
}
