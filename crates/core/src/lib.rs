//! # gel-lang — the graph embedding language `GEL(Ω,Θ)`
//!
//! The primary contribution of *A Query Language Perspective on Graph
//! Learning* (Geerts, PODS 2023), implemented as a real language:
//! abstract syntax, a textual parser, a type/dimension checker, an
//! evaluator, fragment analysis, normal forms, and compilers from named
//! GNN architectures.
//!
//! ## The language (paper slides 36–67)
//!
//! * [`ast`] — expressions: label/edge/equality atoms, function
//!   application over a function library Ω ([`func::Func`]), and bag
//!   aggregation over Θ ([`func::Agg`]);
//! * [`parser`] — a textual syntax: `sum_{x2}(lab0(x2) | E(x1,x2))`;
//! * [`mod@eval`] — the denotation `ξ_φ : G → (V^p → ℝ^d)` as a dense
//!   [`table::EmbeddingTable`], with a sparse fast path for guarded
//!   (MPNN-shaped) aggregations;
//! * [`analysis`] — **the recipe** (slide 35): determine the fragment
//!   (`MPNN(Ω,Θ)` or `GEL_k(Ω,Θ)`) and read off the WL upper bound on
//!   separation power;
//! * [`architectures`] — GNN-101 / GIN / GCN / GraphSage compiled into
//!   the language (slides 40, 48, 63);
//! * [`wl_sim`] — colour refinement and folklore k-WL *simulated by
//!   expressions* (the constructive halves of slides 52 and 66);
//! * [`normal_form`] — the layered normal form of slide 55 on the
//!   sum-separable fragment;
//! * [`random_expr`] — random well-typed expressions for the
//!   falsification experiments (E3, E9, E11);
//! * [`mod@simplify`] — an algebraic, semantics-preserving expression
//!   optimizer (constant folding, linear-map fusion, concat
//!   flattening);
//! * [`mod@sparse`] — sorted coordinate lists with merge-join and
//!   contraction kernels, the data layer behind the compiled engine's
//!   sparse/factorized evaluation paths (slide 70).
//!
//! ## Quick example
//!
//! ```
//! use gel_lang::parser::parse;
//! use gel_lang::eval::eval;
//! use gel_lang::analysis::analyze;
//! use gel_graph::families::star;
//!
//! // deg(v) as an MPNN(Ω,Θ) expression.
//! let deg = parse("sum_{x2}(const[1] | E(x1,x2))").unwrap();
//! let report = analyze(&deg);
//! assert_eq!(report.to_string(),
//!            "fragment MPNN(Ω,Θ), width 2, separation power ⊆ ρ(colour refinement)");
//! let table = eval(&deg, &star(3));
//! assert_eq!(table.cell(&[0]), &[3.0]);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod architectures;
pub mod ast;
pub mod eval;
pub mod func;
pub mod normal_form;
pub mod parser;
pub mod plan;
pub mod random_expr;
pub mod simplify;
pub mod sparse;
pub mod table;
pub mod wl_sim;

pub use analysis::{analyze, is_mpnn, ExpressivenessReport, Fragment, WlBound};
pub use ast::{build, CmpOp, Expr, TypeError};
pub use eval::{check_against_graph, eval, eval_with, try_eval, EvalError, EvalOptions};
pub use func::{Agg, Func};
pub use parser::{parse, ParseError};
pub use plan::{
    eval_dense_fallbacks, eval_plan_builds, eval_slab_allocs, eval_sparse_nnz, eval_wco_joins,
    eval_wco_seeks, expr_dag_hash, EvalEngine, PlanTooDense,
};
pub use simplify::simplify;
pub use table::{EmbeddingTable, Var};
