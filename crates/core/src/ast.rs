//! The abstract syntax of `GEL(Ω,Θ)` (paper slides 42–46, 59–61).
//!
//! Expressions:
//!
//! * atomic — `Lab_j(x_i)` (slide 43), `E(x_i, x_j)` and
//!   `1[x_i op x_j]` (slide 59), plus constants;
//! * function application `F(φ₁, …, φ_ℓ)` with `F ∈ Ω` (slides 44, 60);
//! * aggregation `agg^θ_{ȳ}(φ₁ | φ₂)` with `θ ∈ Θ` (slides 45–46, 61):
//!   aggregate the value of `φ₁` over all assignments of `ȳ` where the
//!   guard `φ₂` is non-zero; a missing guard means "aggregate over all
//!   of `V^{|ȳ|}`" (global aggregation, slide 46).
//!
//! Every expression has a *dimension* and a set of *free variables*
//! ([`Expr::dim`], [`Expr::free_vars`]); [`Expr::validate`] checks
//! dimension compatibility the way a query-language type checker would.

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::func::{Agg, Func};
use crate::table::Var;

/// Comparison operator of equality atoms (slide 59).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `1[x_i = x_j]`.
    Eq,
    /// `1[x_i ≠ x_j]`.
    Ne,
}

/// A `GEL(Ω,Θ)` expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// `Lab_j(x_i)`: the `j`-th component (0-based) of the label of the
    /// vertex bound to `x_i`. Dimension 1.
    Label {
        /// Label component index (0-based).
        j: usize,
        /// The variable.
        var: Var,
    },
    /// The full label vector of `x_i` (a convenience for `ℝ^d` labels;
    /// equals the concatenation `(Lab_0(x), …, Lab_{d−1}(x))`).
    LabelVec {
        /// The variable.
        var: Var,
        /// Label dimension of the graphs this expression is meant for.
        dim: usize,
    },
    /// `E(x_i, x_j)`: 1 if the arc `(x_i, x_j)` exists, else 0.
    Edge {
        /// Source variable.
        from: Var,
        /// Target variable.
        to: Var,
    },
    /// `1[x_i op x_j]`.
    Cmp {
        /// Left variable.
        a: Var,
        /// The comparison.
        op: CmpOp,
        /// Right variable.
        b: Var,
    },
    /// A constant vector (dimension = `values.len()`, no free
    /// variables).
    Const {
        /// The constant value.
        values: Vec<f64>,
    },
    /// `F(φ₁, …, φ_ℓ)` for `F ∈ Ω`, applied to the concatenation of the
    /// argument values under the shared assignment.
    Apply {
        /// The function.
        func: Func,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// `agg^θ_{ȳ}(value | guard)`.
    Aggregate {
        /// The aggregator θ ∈ Θ.
        agg: Agg,
        /// Variables `ȳ` aggregated away (non-empty, deduplicated).
        over: Vec<Var>,
        /// The aggregated expression φ₁.
        value: Box<Expr>,
        /// Optional guard φ₂ (must have dimension 1); `None` aggregates
        /// over every assignment.
        guard: Option<Box<Expr>>,
    },
    /// A physically shared subexpression — semantically identical to
    /// its contents, with `clone()` costing one reference-count bump
    /// instead of a deep copy.
    ///
    /// The WL-simulation builders ([`crate::wl_sim`]) embed several
    /// copies of the previous round per layer; with owned children that
    /// makes the *materialized* tree exponential in the round count
    /// (millions of nodes) even though the number of distinct subtrees
    /// is linear. Wrapping each round in `Shared` keeps construction,
    /// plan lowering and drop linear. [`Expr::structural_hash`] and
    /// evaluation see straight through the wrapper;
    /// [`Expr::rename_var`] preserves sharing by renaming each shared
    /// node once. Note `PartialEq` (derived) does *not* unwrap:
    /// `Shared(e) != e` structurally.
    Shared(
        /// The shared subexpression.
        Arc<Expr>,
    ),
}

/// Errors reported by [`Expr::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// A function cannot accept the concatenated dimension of its args.
    FuncDimension {
        /// Pretty name of the function.
        func: String,
        /// Offered input dimension.
        d_in: usize,
    },
    /// A guard must have dimension 1.
    GuardDimension(usize),
    /// Aggregation variable list empty or duplicated.
    BadAggregationVars,
    /// An `Edge`/`Cmp` atom uses the same variable twice.
    RepeatedVariable(Var),
    /// Variable id 0 is reserved (variables are 1-based like the paper).
    ZeroVariable,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::FuncDimension { func, d_in } => {
                write!(f, "function {func} cannot accept input dimension {d_in}")
            }
            TypeError::GuardDimension(d) => write!(f, "guard must have dimension 1, got {d}"),
            TypeError::BadAggregationVars => write!(f, "aggregation variables empty or repeated"),
            TypeError::RepeatedVariable(v) => write!(f, "atom uses variable x{v} twice"),
            TypeError::ZeroVariable => write!(f, "variable ids are 1-based"),
        }
    }
}

impl std::error::Error for TypeError {}

impl Expr {
    /// The output dimension of the expression.
    ///
    /// # Panics
    /// Panics on ill-typed expressions; call [`Expr::validate`] first
    /// when handling untrusted input.
    pub fn dim(&self) -> usize {
        match self {
            Expr::Label { .. } | Expr::Edge { .. } | Expr::Cmp { .. } => 1,
            Expr::LabelVec { dim, .. } => *dim,
            Expr::Const { values } => values.len(),
            Expr::Apply { func, args } => {
                let d_in: usize = args.iter().map(Expr::dim).sum();
                func.out_dim(d_in).expect("ill-typed Apply; validate first")
            }
            Expr::Aggregate { value, .. } => value.dim(),
            Expr::Shared(e) => e.dim(),
        }
    }

    /// The set of free variables (paper: `fv(φ)`).
    pub fn free_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_free(&mut out);
        out
    }

    fn collect_free(&self, out: &mut BTreeSet<Var>) {
        match self {
            Expr::Label { var, .. } | Expr::LabelVec { var, .. } => {
                out.insert(*var);
            }
            Expr::Edge { from, to } => {
                out.insert(*from);
                out.insert(*to);
            }
            Expr::Cmp { a, b, .. } => {
                out.insert(*a);
                out.insert(*b);
            }
            Expr::Const { .. } => {}
            Expr::Apply { args, .. } => {
                for a in args {
                    a.collect_free(out);
                }
            }
            Expr::Aggregate { over, value, guard, .. } => {
                let mut inner = BTreeSet::new();
                value.collect_free(&mut inner);
                if let Some(g) = guard {
                    g.collect_free(&mut inner);
                }
                for v in over {
                    inner.remove(v);
                }
                out.extend(inner);
            }
            Expr::Shared(e) => e.collect_free(out),
        }
    }

    /// All variables mentioned anywhere (free or aggregated) — the
    /// *variable width* used by the fragment analysis (`GEL_k` uses at
    /// most `k` distinct variables, slide 62).
    pub fn all_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_all(&mut out);
        out
    }

    fn collect_all(&self, out: &mut BTreeSet<Var>) {
        match self {
            Expr::Label { var, .. } | Expr::LabelVec { var, .. } => {
                out.insert(*var);
            }
            Expr::Edge { from, to } => {
                out.insert(*from);
                out.insert(*to);
            }
            Expr::Cmp { a, b, .. } => {
                out.insert(*a);
                out.insert(*b);
            }
            Expr::Const { .. } => {}
            Expr::Apply { args, .. } => {
                for a in args {
                    a.collect_all(out);
                }
            }
            Expr::Aggregate { over, value, guard, .. } => {
                out.extend(over.iter().copied());
                value.collect_all(out);
                if let Some(g) = guard {
                    g.collect_all(out);
                }
            }
            Expr::Shared(e) => e.collect_all(out),
        }
    }

    /// Type-checks the expression; `Ok(dim)` on success.
    pub fn validate(&self) -> Result<usize, TypeError> {
        match self {
            Expr::Label { var, .. } | Expr::LabelVec { var, .. } => {
                if *var == 0 {
                    return Err(TypeError::ZeroVariable);
                }
                Ok(self.dim_unchecked())
            }
            Expr::Edge { from, to } => {
                if *from == 0 || *to == 0 {
                    return Err(TypeError::ZeroVariable);
                }
                if from == to {
                    return Err(TypeError::RepeatedVariable(*from));
                }
                Ok(1)
            }
            Expr::Cmp { a, b, .. } => {
                if *a == 0 || *b == 0 {
                    return Err(TypeError::ZeroVariable);
                }
                if a == b {
                    return Err(TypeError::RepeatedVariable(*a));
                }
                Ok(1)
            }
            Expr::Const { values } => Ok(values.len()),
            Expr::Apply { func, args } => {
                let mut d_in = 0usize;
                for a in args {
                    d_in += a.validate()?;
                }
                func.out_dim(d_in)
                    .ok_or_else(|| TypeError::FuncDimension { func: func.name(), d_in })
            }
            Expr::Aggregate { over, value, guard, .. } => {
                if over.is_empty() {
                    return Err(TypeError::BadAggregationVars);
                }
                let mut dedup = over.clone();
                dedup.sort_unstable();
                dedup.dedup();
                if dedup.len() != over.len() || dedup.contains(&0) {
                    return Err(TypeError::BadAggregationVars);
                }
                let d = value.validate()?;
                if let Some(g) = guard {
                    let gd = g.validate()?;
                    if gd != 1 {
                        return Err(TypeError::GuardDimension(gd));
                    }
                }
                Ok(d)
            }
            Expr::Shared(e) => e.validate(),
        }
    }

    fn dim_unchecked(&self) -> usize {
        match self {
            Expr::LabelVec { dim, .. } => *dim,
            _ => 1,
        }
    }

    /// Renames every occurrence (free and bound) of variable `from` to
    /// `to`. Used by the WL-simulation builders which instantiate one
    /// template at several positions (experiment E9).
    pub fn rename_var(&self, from: Var, to: Var) -> Expr {
        self.rename_memo(from, to, &mut HashMap::new())
    }

    /// [`Expr::rename_var`] with a per-call memo of already-renamed
    /// [`Expr::Shared`] nodes (keyed by pointer), so renaming a shared
    /// DAG stays linear in its *distinct* nodes and the result is
    /// shared the same way the input was.
    fn rename_memo(&self, from: Var, to: Var, memo: &mut HashMap<*const Expr, Arc<Expr>>) -> Expr {
        let r = |v: Var| if v == from { to } else { v };
        match self {
            Expr::Label { j, var } => Expr::Label { j: *j, var: r(*var) },
            Expr::LabelVec { var, dim } => Expr::LabelVec { var: r(*var), dim: *dim },
            Expr::Edge { from: a, to: b } => Expr::Edge { from: r(*a), to: r(*b) },
            Expr::Cmp { a, op, b } => Expr::Cmp { a: r(*a), op: *op, b: r(*b) },
            Expr::Const { values } => Expr::Const { values: values.clone() },
            Expr::Apply { func, args } => Expr::Apply {
                func: func.clone(),
                args: args.iter().map(|a| a.rename_memo(from, to, memo)).collect(),
            },
            Expr::Aggregate { agg, over, value, guard } => Expr::Aggregate {
                agg: *agg,
                over: over.iter().map(|&v| r(v)).collect(),
                value: Box::new(value.rename_memo(from, to, memo)),
                guard: guard.as_ref().map(|g| Box::new(g.rename_memo(from, to, memo))),
            },
            Expr::Shared(rc) => {
                let p = Arc::as_ptr(rc);
                if let Some(hit) = memo.get(&p) {
                    return Expr::Shared(Arc::clone(hit));
                }
                let renamed = Arc::new(rc.rename_memo(from, to, memo));
                memo.insert(p, Arc::clone(&renamed));
                Expr::Shared(renamed)
            }
        }
    }

    /// A 64-bit structural fingerprint: equal expressions hash equal.
    /// The evaluator memoizes on this, which collapses the exponential
    /// duplication created by the layer compilers (each WL-simulation
    /// round embeds several copies of the previous round) back to
    /// linear work.
    pub fn structural_hash(&self) -> u64 {
        if let Expr::Shared(e) = self {
            // Transparent: hashes as its contents. (This unfolds the
            // DAG; the plan compiler uses a pointer-memoized walk
            // instead — see `plan::dag_hash`.)
            return e.structural_hash();
        }
        let mut h = self.hash_header();
        match self {
            Expr::Apply { args, .. } => {
                for a in args {
                    h = hash_mix(h, a.structural_hash());
                }
            }
            Expr::Aggregate { value, guard, .. } => {
                h = hash_mix(h, value.structural_hash());
                if let Some(g) = guard {
                    h = hash_mix(h, g.structural_hash());
                }
            }
            _ => {}
        }
        h
    }

    /// The child-independent prefix of [`Expr::structural_hash`]: for a
    /// leaf this is the full hash; for `Apply`/`Aggregate` the full
    /// hash is this header [`hash_mix`]ed with each child's hash in
    /// order (value, then guard). The plan compiler uses this to hash
    /// an expression bottom-up in the same walk that lowers it, turning
    /// the quadratic per-subtree rehash into linear work.
    pub(crate) fn hash_header(&self) -> u64 {
        let mix = hash_mix;
        match self {
            Expr::Label { j, var } => mix(mix(1, *j as u64), *var as u64),
            Expr::LabelVec { var, dim } => mix(mix(2, *var as u64), *dim as u64),
            Expr::Edge { from, to } => mix(mix(3, *from as u64), *to as u64),
            Expr::Cmp { a, op, b } => mix(mix(mix(4, *a as u64), *op as u64), *b as u64),
            Expr::Const { values } => values.iter().fold(5, |h, v| mix(h, v.to_bits())),
            Expr::Apply { func, .. } => {
                let h = 6;
                match func {
                    crate::func::Func::Linear { weights, bias } => {
                        let mut h = mix(h, 10);
                        h = mix(h, weights.rows() as u64);
                        h = mix(h, weights.cols() as u64);
                        for v in weights.data() {
                            h = mix(h, v.to_bits());
                        }
                        for v in bias {
                            h = mix(h, v.to_bits());
                        }
                        h
                    }
                    crate::func::Func::Act(a) => mix(h, 11 + *a as u64 * 31),
                    crate::func::Func::Concat => mix(h, 12),
                    crate::func::Func::Add { arity, dim } => {
                        mix(mix(mix(h, 13), *arity as u64), *dim as u64)
                    }
                    crate::func::Func::Mul { arity, dim } => {
                        mix(mix(mix(h, 14), *arity as u64), *dim as u64)
                    }
                    crate::func::Func::Scale(s) => mix(mix(h, 15), s.to_bits()),
                    crate::func::Func::Proj { start, len } => {
                        mix(mix(mix(h, 16), *start as u64), *len as u64)
                    }
                    crate::func::Func::Hash { seed } => mix(mix(h, 17), *seed),
                }
            }
            Expr::Aggregate { agg, over, .. } => {
                let mut h = mix(7, *agg as u64);
                for v in over {
                    h = mix(h, *v as u64);
                }
                h
            }
            Expr::Shared(e) => e.hash_header(),
        }
    }

    /// Swaps variables `a` and `b` everywhere (free and bound). Unlike
    /// [`Expr::rename_var`], a swap is always capture-avoiding, which
    /// is what the layer compilers need to reuse two variables across
    /// layers (slide 42: "we take two variables x₁ and x₂").
    pub fn swap_vars(&self, a: Var, b: Var) -> Expr {
        const TMP: Var = Var::MAX;
        self.rename_var(a, TMP).rename_var(b, a).rename_var(TMP, b)
    }

    /// Number of AST nodes (diagnostics / complexity bookkeeping).
    pub fn size(&self) -> usize {
        match self {
            Expr::Label { .. }
            | Expr::LabelVec { .. }
            | Expr::Edge { .. }
            | Expr::Cmp { .. }
            | Expr::Const { .. } => 1,
            Expr::Apply { args, .. } => 1 + args.iter().map(Expr::size).sum::<usize>(),
            Expr::Aggregate { value, guard, .. } => {
                1 + value.size() + guard.as_ref().map_or(0, |g| g.size())
            }
            // Logical size: counts the unfolding, like every other
            // observer of the syntax tree.
            Expr::Shared(e) => e.size(),
        }
    }
}

/// The mixing step of [`Expr::structural_hash`]. Exposed to the plan
/// compiler so it can fold child hashes into [`Expr::hash_header`]
/// without re-walking subtrees.
#[inline]
pub(crate) fn hash_mix(h: u64, x: u64) -> u64 {
    let mut h = h ^ x.wrapping_mul(0x9e3779b97f4a7c15);
    h = h.wrapping_mul(0x100000001b3);
    h ^ (h >> 29)
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Label { j, var } => write!(f, "lab{j}(x{var})"),
            Expr::LabelVec { var, .. } => write!(f, "lab(x{var})"),
            Expr::Edge { from, to } => write!(f, "E(x{from},x{to})"),
            Expr::Cmp { a, op, b } => {
                let s = if *op == CmpOp::Eq { "=" } else { "!=" };
                write!(f, "1[x{a}{s}x{b}]")
            }
            Expr::Const { values } => {
                write!(f, "const[")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Expr::Apply { func, args } => {
                write!(f, "{}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Aggregate { agg, over, value, guard } => {
                write!(f, "{}_{{", agg.name())?;
                for (i, v) in over.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "x{v}")?;
                }
                write!(f, "}}({value}")?;
                if let Some(g) = guard {
                    write!(f, " | {g}")?;
                }
                write!(f, ")")
            }
            // Transparent: prints (and therefore re-parses) as the
            // unfolded expression.
            Expr::Shared(e) => write!(f, "{e}"),
        }
    }
}

/// Convenience constructors mirroring the paper's notation.
pub mod build {
    use super::*;

    /// `lab_j(x_var)`.
    pub fn lab(j: usize, var: Var) -> Expr {
        Expr::Label { j, var }
    }

    /// The full label vector of `x_var` (for label dimension `dim`).
    pub fn lab_vec(var: Var, dim: usize) -> Expr {
        Expr::LabelVec { var, dim }
    }

    /// `E(x_from, x_to)`.
    pub fn edge(from: Var, to: Var) -> Expr {
        Expr::Edge { from, to }
    }

    /// `1[x_a = x_b]`.
    pub fn eq(a: Var, b: Var) -> Expr {
        Expr::Cmp { a, op: CmpOp::Eq, b }
    }

    /// `1[x_a ≠ x_b]`.
    pub fn ne(a: Var, b: Var) -> Expr {
        Expr::Cmp { a, op: CmpOp::Ne, b }
    }

    /// A constant.
    pub fn constant(values: Vec<f64>) -> Expr {
        Expr::Const { values }
    }

    /// `F(args…)`.
    pub fn apply(func: Func, args: Vec<Expr>) -> Expr {
        Expr::Apply { func, args }
    }

    /// Guarded neighbourhood aggregation
    /// `agg^θ_{x_over}(value | E(x_anchor, x_over))` — the MPNN form
    /// (slide 45).
    pub fn nbr_agg(agg: Agg, anchor: Var, over: Var, value: Expr) -> Expr {
        Expr::Aggregate {
            agg,
            over: vec![over],
            value: Box::new(value),
            guard: Some(Box::new(edge(anchor, over))),
        }
    }

    /// Global aggregation `agg^θ_{x_over}(value)` (slide 46).
    pub fn global_agg(agg: Agg, over: Var, value: Expr) -> Expr {
        Expr::Aggregate { agg, over: vec![over], value: Box::new(value), guard: None }
    }

    /// General guarded aggregation over several variables (slide 61).
    pub fn agg_over(agg: Agg, over: Vec<Var>, value: Expr, guard: Option<Expr>) -> Expr {
        Expr::Aggregate { agg, over, value: Box::new(value), guard: guard.map(Box::new) }
    }

    /// Pointwise sum of two equal-dimension expressions.
    pub fn add2(a: Expr, b: Expr) -> Expr {
        let dim = a.dim();
        apply(Func::Add { arity: 2, dim }, vec![a, b])
    }

    /// Pointwise product of two equal-dimension expressions.
    pub fn mul2(a: Expr, b: Expr) -> Expr {
        let dim = a.dim();
        apply(Func::Mul { arity: 2, dim }, vec![a, b])
    }

    /// ReLU.
    pub fn relu(e: Expr) -> Expr {
        apply(Func::Act(gel_tensor::Activation::ReLU), vec![e])
    }

    /// The injective mix (for WL simulation).
    pub fn hash(seed: u64, e: Expr) -> Expr {
        apply(Func::Hash { seed }, vec![e])
    }

    /// Wraps `e` in [`Expr::Shared`] so subsequent `clone()`s are
    /// reference-count bumps instead of deep copies.
    pub fn share(e: Expr) -> Expr {
        Expr::Shared(Arc::new(e))
    }
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;
    use gel_tensor::Matrix;

    #[test]
    fn dims_and_free_vars() {
        // sum_{x2}( concat(lab0(x1), lab0(x2)) | E(x1,x2) )
        let e = nbr_agg(Agg::Sum, 1, 2, apply(Func::Concat, vec![lab(0, 1), lab(0, 2)]));
        assert_eq!(e.validate().unwrap(), 2);
        assert_eq!(e.dim(), 2);
        let fv: Vec<Var> = e.free_vars().into_iter().collect();
        assert_eq!(fv, vec![1]);
        let av: Vec<Var> = e.all_vars().into_iter().collect();
        assert_eq!(av, vec![1, 2]);
    }

    #[test]
    fn closed_expression_has_no_free_vars() {
        let e = global_agg(Agg::Sum, 1, lab(0, 1));
        assert!(e.free_vars().is_empty());
        assert_eq!(e.validate().unwrap(), 1);
    }

    #[test]
    fn validate_rejects_bad_linear() {
        let e = apply(
            Func::Linear { weights: Matrix::zeros(3, 2), bias: vec![0.0; 2] },
            vec![lab(0, 1)], // d_in = 1, needs 3
        );
        assert!(matches!(e.validate(), Err(TypeError::FuncDimension { .. })));
    }

    #[test]
    fn validate_rejects_vector_guard() {
        let e = agg_over(Agg::Sum, vec![2], lab(0, 1), Some(lab_vec(2, 3)));
        assert_eq!(e.validate(), Err(TypeError::GuardDimension(3)));
    }

    #[test]
    fn validate_rejects_dup_agg_vars() {
        let e = agg_over(Agg::Sum, vec![2, 2], lab(0, 1), None);
        assert_eq!(e.validate(), Err(TypeError::BadAggregationVars));
    }

    #[test]
    fn validate_rejects_self_edge_atom() {
        assert_eq!(edge(1, 1).validate(), Err(TypeError::RepeatedVariable(1)));
        assert_eq!(eq(2, 2).validate(), Err(TypeError::RepeatedVariable(2)));
    }

    #[test]
    fn rename_respects_binding() {
        let e = nbr_agg(Agg::Sum, 1, 2, lab(0, 2));
        let r = e.rename_var(1, 3);
        let fv: Vec<Var> = r.free_vars().into_iter().collect();
        assert_eq!(fv, vec![3]);
        // Renaming the bound variable changes `over` too.
        let r2 = e.rename_var(2, 3);
        if let Expr::Aggregate { over, .. } = &r2 {
            assert_eq!(over, &vec![3]);
        } else {
            panic!("shape changed");
        }
    }

    #[test]
    fn display_round_readable() {
        let e = nbr_agg(Agg::Sum, 1, 2, lab(0, 2));
        assert_eq!(e.to_string(), "sum_{x2}(lab0(x2) | E(x1,x2))");
        assert_eq!(eq(1, 2).to_string(), "1[x1=x2]");
    }

    #[test]
    fn size_counts_nodes() {
        let e = add2(lab(0, 1), lab(1, 1));
        assert_eq!(e.size(), 3);
    }

    #[test]
    fn display_parse_roundtrip() {
        // Textual round-trip through the native syntax (the serde
        // derives are no-ops in offline builds; see vendor/serde).
        let e = nbr_agg(Agg::Max, 1, 2, mul2(lab(0, 1), lab(0, 2)));
        let back = crate::parser::parse(&e.to_string()).unwrap();
        assert_eq!(e, back);
    }
}
