//! Compiled evaluation of `GEL(Ω,Θ)` expressions: lowering to a flat
//! plan of stride-addressed slab kernels.
//!
//! The original evaluator (kept as the test oracle in
//! `eval::oracle`) walked the expression tree per *cell*: every table
//! entry re-derived its flat index through [`EmbeddingTable::cell_env`]
//! and every shared subtree went through an `Rc<RefCell<HashMap>>`
//! memo. [`EvalEngine`] instead *compiles* the expression once:
//!
//! * **Plan lowering.** The tree is flattened into a DAG of plan
//!   nodes in children-first order, deduplicated by
//!   [`Expr::structural_hash`] — the same key the old memo used, so
//!   the architecture compilers' massive subtree sharing collapses
//!   identically. Executing the plan is a single in-order sweep.
//! * **Stride layout.** Each node owns a contiguous `f64` slab in the
//!   row-major layout of [`EmbeddingTable`] (variables ascending, last
//!   variable fastest). For every kernel input, the lowering
//!   precomputes one stride per *output* odometer digit — the flat
//!   offset is maintained incrementally as the odometer advances, so
//!   the hot loops never touch a hash map or recompute `Σ vⱼ·n^…`.
//! * **Contraction order.** Dense aggregation streams the innermost
//!   aggregated axis contiguously and accumulates straight into the
//!   output cell, in exactly the serial element order of the oracle
//!   (`Sum`/`Mean` add in inner-odometer order, `Max`/`Min` copy-first
//!   then fold), so results are bit-identical, not just close. The
//!   MPNN edge-guard fast path survives compilation as the
//!   [`Kind::AggNbr`] kernel: CSR neighbour iteration for any number
//!   of free variables, still gated by the DESIGN.md §6
//!   `guard_fast_path` ablation flag.
//! * **Scratch reuse.** Slabs come from a best-fit pool owned by the
//!   engine; re-evaluating the same expression shape (E9 probes each
//!   random expression on both graphs of a pair) hits the cached plan
//!   and touches no allocator at all. Pool misses are tracked by the
//!   always-on [`eval_slab_allocs`] counter and mirrored to the
//!   `eval.slab.allocs` obs counter.
//!
//! Outer-assignment loops of `Apply`/`Aggregate` parallelize over
//! contiguous output-cell ranges (`rayon::par_parts_mut`) once a node
//! exceeds [`PAR_MIN_WORK`]; each range replays the identical serial
//! per-cell order, so tables are bit-identical at any thread count —
//! the same discipline as the matmul and WL-renaming kernels.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use gel_graph::{Graph, Vertex};
use gel_tensor::kernels::{gather_sum_into, gather_sum_scalar};

use crate::ast::{CmpOp, Expr};
use crate::eval::EvalOptions;
use crate::func::{Agg, Func};
use crate::sparse::{
    contract_sum, join_multiply, join_multiway, rekey_into, CoordList, JoinScratch, MAX_WCO_FACTORS,
};
use crate::table::{EmbeddingTable, Var};

/// Tracked slab-pool misses since process start. Steady-state
/// evaluations of a cached plan perform none: the CI smoke gate
/// (`gel-bench --bench eval -- --smoke`) asserts the counter stays
/// flat across repeated calls. Always on (independent of the `obs`
/// feature) and monotone.
pub fn eval_slab_allocs() -> u64 {
    SLAB_ALLOCS.load(Ordering::Relaxed)
}

/// Tracked plan lowerings since process start: the number of times any
/// [`EvalEngine`] actually lowered an expression into a fresh plan (a
/// cached-plan hit does not count). Always on and monotone, like
/// [`eval_slab_allocs`]; mirrored to the `eval.plan.builds` obs
/// counter. The `gel-serve` plan cache and its `--bench serve` smoke
/// gate use the delta of this counter to prove that warm-cache
/// requests never re-lower.
pub fn eval_plan_builds() -> u64 {
    PLAN_BUILDS.load(Ordering::Relaxed)
}

/// The hash key under which an expression's plan is cached: the
/// structural hash computed with pointer memoization at
/// [`Expr::Shared`] boundaries, so hashing a shared DAG is linear in
/// its distinct nodes (a plain [`Expr::structural_hash`] would unfold
/// it). Equal subtrees — shared or physically copied — collide to the
/// same key, exactly as inside [`EvalEngine`]; external plan caches
/// (the `gel-serve` server) key persistent engines by this value.
pub fn expr_dag_hash(expr: &Expr) -> u64 {
    let mut memo = HashMap::new();
    dag_hash(expr, &mut memo)
}

static SLAB_ALLOCS: AtomicU64 = AtomicU64::new(0);
static PLAN_BUILDS: AtomicU64 = AtomicU64::new(0);
static OBS_SLAB_ALLOCS: gel_obs::Counter = gel_obs::Counter::new("eval.slab.allocs");
static OBS_CALLS: gel_obs::Counter = gel_obs::Counter::new("eval.calls");
static OBS_PLAN_BUILDS: gel_obs::Counter = gel_obs::Counter::new("eval.plan.builds");
static OBS_PLAN_NODES: gel_obs::Counter = gel_obs::Counter::new("eval.plan.nodes");

/// Total entries emitted by sparse node representations (coordinate
/// lists) since process start. Always on and monotone, like
/// [`eval_slab_allocs`]; mirrored to the `eval.sparse.nnz` obs counter.
pub fn eval_sparse_nnz() -> u64 {
    SPARSE_NNZ.load(Ordering::Relaxed)
}

/// Times a sparse node had to scatter its entries into a dense slab
/// because some consumer (or the root) reads the dense layout. A
/// steadily climbing count signals a plan whose representation choices
/// fight each other; mirrored to `eval.sparse.fallbacks`.
pub fn eval_dense_fallbacks() -> u64 {
    DENSE_FALLBACKS.load(Ordering::Relaxed)
}

static SPARSE_NNZ: AtomicU64 = AtomicU64::new(0);
static DENSE_FALLBACKS: AtomicU64 = AtomicU64::new(0);
static OBS_SPARSE_NNZ: gel_obs::Counter = gel_obs::Counter::new("eval.sparse.nnz");
static OBS_SPARSE_FALLBACKS: gel_obs::Counter = gel_obs::Counter::new("eval.sparse.fallbacks");

/// Worst-case-optimal multiway joins executed ([`Kind::JoinWco`]
/// kernel invocations) since process start. Always on and monotone;
/// mirrored to the `eval.wco.joins` obs counter. The bench crossover
/// sweep uses the delta to prove the cyclic probes actually took the
/// wco path.
pub fn eval_wco_joins() -> u64 {
    WCO_JOINS.load(Ordering::Relaxed)
}

/// Leapfrog seeks performed across all wco joins (the kernel's
/// intersection work — the quantity the AGM bound caps). Mirrored to
/// `eval.wco.seeks`.
pub fn eval_wco_seeks() -> u64 {
    WCO_SEEKS.load(Ordering::Relaxed)
}

static WCO_JOINS: AtomicU64 = AtomicU64::new(0);
static WCO_SEEKS: AtomicU64 = AtomicU64::new(0);
static OBS_WCO_JOINS: gel_obs::Counter = gel_obs::Counter::new("eval.wco.joins");
static OBS_WCO_SEEKS: gel_obs::Counter = gel_obs::Counter::new("eval.wco.seeks");

fn note_sparse(nnz: usize) {
    SPARSE_NNZ.fetch_add(nnz as u64, Ordering::Relaxed);
    OBS_SPARSE_NNZ.add(nnz as u64);
}

/// Scatters a sparse node's entries into its dense slab — the
/// representation fallback when a dense consumer needs the table.
/// Absent entries become `+0.0` (see DESIGN.md §7 on the `±0`/`NaN`
/// caveat of eliding semantically-zero cells).
fn densify(sp: &CoordList, out: &mut [f64]) {
    out.fill(0.0);
    let d = sp.dim();
    for (i, &c) in sp.coords().iter().enumerate() {
        out[c * d..(c + 1) * d].copy_from_slice(sp.value(i));
    }
    DENSE_FALLBACKS.fetch_add(1, Ordering::Relaxed);
    OBS_SPARSE_FALLBACKS.incr();
}

fn note_slab_alloc(len: usize) {
    if len > 0 {
        SLAB_ALLOCS.fetch_add(1, Ordering::Relaxed);
        OBS_SLAB_ALLOCS.incr();
    }
}

/// Error of [`EvalEngine::try_eval_capped`]: the lowered plan needs a
/// dense slab longer than the caller's cap, so evaluating it would
/// allocate (and fill) more dense storage than the caller is willing
/// to pay for. Raised before any storage is allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanTooDense {
    /// Length (elements) of the offending dense slab.
    pub len: usize,
    /// The caller's cap.
    pub cap: usize,
}

impl std::fmt::Display for PlanTooDense {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "plan needs a dense slab of {} elements (cap {})", self.len, self.cap)
    }
}

impl std::error::Error for PlanTooDense {}

/// The [`PlanTooDense`] pre-pass: every node that will own a dense slab
/// (dense representation, or sparse with a dense consumer) must fit
/// under the cap.
fn check_dense_cap(nodes: &[Node], cap: Option<usize>) -> Result<(), PlanTooDense> {
    let Some(cap) = cap else { return Ok(()) };
    for nd in nodes {
        if (!nd.sparse || nd.needs_dense) && nd.len > cap {
            return Err(PlanTooDense { len: nd.len, cap });
        }
    }
    Ok(())
}

/// Minimum kernel work (output elements × inner iterations) before an
/// outer-assignment loop is split across rayon threads; below it the
/// dispatch overhead dominates.
const PAR_MIN_WORK: usize = 1 << 14;

/// Zero strides for the guard-less aggregation path (a digit may never
/// index past 255 distinct `u8` variables).
static ZERO_STRIDES: [usize; 256] = [0; 256];

/// Best-fit recycler for node slabs: `take` prefers the smallest
/// pooled buffer whose capacity fits, so repeated plans of the same
/// shapes reach a zero-allocation steady state.
#[derive(Default)]
struct SlabPool {
    slabs: Vec<Vec<f64>>,
}

impl SlabPool {
    fn take(&mut self, len: usize) -> Vec<f64> {
        let mut best: Option<(usize, usize)> = None;
        for (i, s) in self.slabs.iter().enumerate() {
            let c = s.capacity();
            let tighter = match best {
                Some((_, bc)) => c < bc,
                None => true,
            };
            if c >= len && tighter {
                best = Some((i, c));
            }
        }
        let mut s = match best {
            Some((i, _)) => self.slabs.swap_remove(i),
            None => {
                note_slab_alloc(len);
                Vec::with_capacity(len)
            }
        };
        s.clear();
        s.resize(len, 0.0);
        s
    }

    /// Like [`Self::take`] but only guarantees *capacity*: the buffer
    /// comes back empty, for growable (sparse-value) storage.
    fn take_cap(&mut self, cap: usize) -> Vec<f64> {
        let mut best: Option<(usize, usize)> = None;
        for (i, s) in self.slabs.iter().enumerate() {
            let c = s.capacity();
            let tighter = match best {
                Some((_, bc)) => c < bc,
                None => true,
            };
            if c >= cap && tighter {
                best = Some((i, c));
            }
        }
        let mut s = match best {
            Some((i, _)) => self.slabs.swap_remove(i),
            None => {
                note_slab_alloc(cap);
                Vec::with_capacity(cap)
            }
        };
        s.clear();
        s
    }

    fn put(&mut self, s: Vec<f64>) {
        if s.capacity() > 0 {
            self.slabs.push(s);
        }
    }
}

/// The coordinate-buffer sibling of [`SlabPool`] (`Vec<usize>` instead
/// of `Vec<f64>`). Misses feed the same [`eval_slab_allocs`] counter,
/// so the CI smoke gate covers sparse buffers too.
#[derive(Default)]
struct IdxPool {
    bufs: Vec<Vec<usize>>,
}

impl IdxPool {
    fn take_cap(&mut self, cap: usize) -> Vec<usize> {
        let mut best: Option<(usize, usize)> = None;
        for (i, b) in self.bufs.iter().enumerate() {
            let c = b.capacity();
            let tighter = match best {
                Some((_, bc)) => c < bc,
                None => true,
            };
            if c >= cap && tighter {
                best = Some((i, c));
            }
        }
        let mut b = match best {
            Some((i, _)) => self.bufs.swap_remove(i),
            None => {
                note_slab_alloc(cap);
                Vec::with_capacity(cap)
            }
        };
        b.clear();
        b
    }

    fn put(&mut self, b: Vec<usize>) {
        if b.capacity() > 0 {
            self.bufs.push(b);
        }
    }
}

/// Per-input addressing of a kernel operand: `strides[j]` is the flat
/// element offset the operand's slab moves by when output odometer
/// digit `j` increments.
struct ArgSpec {
    node: usize,
    dim: usize,
    strides: Vec<usize>,
}

/// Aggregation operand: strides split between the outer (free) and
/// inner (aggregated) odometers.
struct AccSpec {
    node: usize,
    outer_strides: Vec<usize>,
    inner_strides: Vec<usize>,
}

enum Kind {
    Label {
        j: usize,
    },
    LabelVec,
    Edge {
        flip: bool,
    },
    CmpEq,
    CmpNe,
    Const {
        values: Vec<f64>,
    },
    Apply {
        func: Func,
        args: Vec<ArgSpec>,
        d_in: usize,
    },
    AggDense {
        agg: Agg,
        value: AccSpec,
        guard: Option<AccSpec>,
        over_len: usize,
        inner_cells: usize,
    },
    AggNbr {
        agg: Agg,
        value: AccSpec,
        x_pos: usize,
        y_stride: usize,
        outgoing: bool,
    },
    /// Scalar `Func::Mul` with at least one sparse operand: iterate the
    /// driver's entries (expanded over the output variables it does not
    /// bind), probe the remaining operands, emit a sparse product.
    MulSparse {
        func: Func,
        args: Vec<MulArg>,
        driver: usize,
        /// Output digit index of each driver coordinate digit.
        driver_pos: Vec<usize>,
        /// Output digit indices the driver does not bind.
        expand_pos: Vec<usize>,
    },
    /// Unguarded `Sum`/`Mean` whose value is sparse and binds every
    /// aggregated variable: one streaming pass over the entries.
    AggSparseValue {
        agg: Agg,
        value: usize,
        /// Per value-coordinate digit: output-coordinate stride (0 for
        /// aggregated digits).
        keep_strides: Vec<usize>,
        inner_cells: usize,
    },
    /// Aggregation gated by a sparse scalar guard that binds every
    /// aggregated variable: per output cell, a binary-searched run of
    /// guard entries replaces the dense inner odometer.
    AggSparseGuard {
        agg: Agg,
        value: AccSpec,
        guard: usize,
        /// Guard-entry re-key strides into `(output part, aggregated
        /// part)` mixed radix.
        gkey_strides: Vec<usize>,
        gkey_identity: bool,
        /// Per output digit: contribution to the key's output part.
        gkey_outer: Vec<usize>,
        /// `n^|over|` — the width of one output cell's key range.
        over_pow: usize,
        over_len: usize,
    },
    /// `Sum` over a pure product of edge/equality indicators: FAQ-style
    /// variable elimination in min-degree order (paper slide 70)
    /// instead of a dense `n^k` sweep. Exact: 0/1 factors make every
    /// partial sum an integer, so reassociating the sum cannot change
    /// the float.
    AggElim {
        factors: Vec<usize>,
        factor_vars: Vec<Vec<Var>>,
        order: Vec<Var>,
        /// Number of aggregated variables in no factor — each multiplies
        /// the (integer) result by `n`, exactly.
        free_over: u32,
    },
    /// `Sum` over a *cyclic* product of 0/1 indicators: the
    /// worst-case-optimal multiway join
    /// ([`crate::sparse::join_multiway`]) intersects every factor per
    /// variable of a shared AGM-aware order instead of materializing
    /// binary-join intermediates that can exceed the output size
    /// (triangles, k-cycles, k-cliques). Emits a sparse output —
    /// free variables lead the order ascending, so entries emerge in
    /// dense layout order.
    JoinWco {
        factors: Vec<usize>,
        factor_vars: Vec<Vec<Var>>,
        /// Free variables (ascending) then eliminated variables in the
        /// AGM-aware order from [`gel_graph::elim::wco_order_masked`].
        order: Vec<Var>,
        /// Length of the free prefix of `order`.
        n_free: usize,
        /// Aggregated variables in no factor (each multiplies by `n`).
        free_over: u32,
    },
}

/// One operand of [`Kind::MulSparse`], gathered in expression order so
/// the packed input row is identical to the dense `Apply` kernel's.
struct MulArg {
    node: usize,
    dim: usize,
    sparse: bool,
    strides: Vec<usize>,
}

struct Node {
    vars: Vec<Var>,
    dim: usize,
    len: usize,
    data: Vec<f64>,
    /// Sparse entries (when `sparse`); like `data`, allocation is
    /// deferred to the post-lowering representation pass.
    sp: CoordList,
    kind: Kind,
    /// The node emits a sparse (coordinate-list) representation.
    sparse: bool,
    /// Some consumer — or the root — reads the dense slab.
    needs_dense: bool,
    /// Some consumer reads the sparse entries.
    sparse_used: bool,
    /// Lowering-time nonzero estimate; sizes the pooled buffers.
    est_nnz: usize,
}

/// Reused serial-path scratch (the parallel path gives each chunk its
/// own small locals instead of sharing these across threads).
#[derive(Default)]
struct ExecScratch {
    input: Vec<f64>,
    result: Vec<f64>,
    digits: Vec<usize>,
    inner_digits: Vec<usize>,
    offsets: Vec<usize>,
    bounds: Vec<usize>,
    /// Sorted-merge-join scratch shared by every sparse kernel.
    join: JoinScratch,
    /// Re-keyed guard entries of [`Kind::AggSparseGuard`].
    gkeys: Vec<(usize, u32)>,
    /// Variable-elimination factor arena ([`Kind::AggElim`]): one slot
    /// per factor, plus ping-pong lists for join/contract outputs. All
    /// capacities persist across evaluations, so the warmed path makes
    /// no allocations.
    arena: Vec<CoordList>,
    avars: Vec<Vec<Var>>,
    alive: Vec<bool>,
    with_v: Vec<usize>,
    tmp: CoordList,
    tmp_vars: Vec<Var>,
    tmp2: CoordList,
    tmp2_vars: Vec<Var>,
}

/// Plan-cache identity: the expression's DAG hash, the graph shape
/// (`n`, `label_dim`), and every lowering-relevant [`EvalOptions`]
/// field (`guard_fast_path`, `sparse`, `sparse_min_cells`, `wco`,
/// `sparse_output`) — a cached plan is reusable only when all match.
type PlanCacheKey = (u64, usize, usize, bool, bool, usize, bool, bool);

/// The compiled evaluation engine. Owns the lowered plan, every
/// intermediate slab, and the output table; repeated [`Self::eval`]
/// calls on the same expression/graph shape reuse all of them, making
/// steady-state evaluation allocation-free (see [`eval_slab_allocs`]).
///
/// The free functions [`crate::eval::eval`] / [`crate::eval::eval_with`]
/// build a throwaway engine per call; hot loops that evaluate many
/// expressions (the E4/E9 probe harnesses, benchmarks) hold one engine
/// per graph and call [`Self::eval`] for a borrowed result.
pub struct EvalEngine {
    opts: EvalOptions,
    n: usize,
    nodes: Vec<Node>,
    node_of: HashMap<u64, usize>,
    root: usize,
    cache_key: Option<PlanCacheKey>,
    /// The current plan's root emits (and the table keeps) a sparse
    /// coordinate list instead of the dense slab
    /// ([`EvalOptions::sparse_output`]).
    root_sparse: bool,
    root_table: EmbeddingTable,
    pool: SlabPool,
    idx_pool: IdxPool,
    scratch: ExecScratch,
    /// Structural hashes of [`Expr::Shared`] nodes, keyed by `Arc`
    /// target address (`usize`, not a raw pointer, so the engine stays
    /// `Send` and can move between server worker threads). Refilled
    /// per call (addresses may be reused across expressions); keeps
    /// hashing a shared DAG linear in its distinct nodes. The map
    /// retains its capacity, so steady-state refills don't allocate.
    hash_memo: HashMap<usize, u64>,
}

impl Default for EvalEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl EvalEngine {
    /// An engine with default [`EvalOptions`].
    pub fn new() -> Self {
        Self::with_options(EvalOptions::default())
    }

    /// An engine with explicit options (ablations).
    pub fn with_options(opts: EvalOptions) -> Self {
        Self {
            opts,
            n: 0,
            nodes: Vec::new(),
            node_of: HashMap::new(),
            root: 0,
            cache_key: None,
            root_sparse: false,
            root_table: EmbeddingTable::placeholder(),
            pool: SlabPool::default(),
            idx_pool: IdxPool::default(),
            scratch: ExecScratch::default(),
            hash_memo: HashMap::new(),
        }
    }

    /// Number of nodes in the current plan (0 before the first call).
    /// Equal subtrees share a node, exactly as the old memo shared
    /// tables.
    pub fn plan_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Evaluates `expr` on `g`, returning a borrow of the engine-owned
    /// result table. Calling again with the same expression shape
    /// (same [`Expr::structural_hash`], vertex count and label
    /// dimension) reuses the cached plan and performs zero heap
    /// allocations.
    ///
    /// # Panics
    /// Panics on ill-typed expressions and out-of-range label atoms,
    /// like [`crate::eval::eval`] — run
    /// [`crate::eval::check_against_graph`] first for untrusted input.
    pub fn eval(&mut self, expr: &Expr, g: &Graph) -> &EmbeddingTable {
        OBS_CALLS.incr();
        self.ensure_plan(expr, g);
        self.run_plan(g)
    }

    /// Like [`Self::eval`], but fails — *before* lowering allocates any
    /// storage — when some plan node needs a dense slab larger than
    /// `cap` elements. With [`EvalOptions::sparse_output`] set, plans
    /// whose root (and intermediates) stay sparse evaluate under a cap
    /// far below `n^width · dim`; the `gel-serve` layer uses this to
    /// admit large-n/low-nnz queries its dense size precheck rejects.
    pub fn try_eval_capped(
        &mut self,
        expr: &Expr,
        g: &Graph,
        cap: usize,
    ) -> Result<&EmbeddingTable, PlanTooDense> {
        OBS_CALLS.incr();
        self.ensure_plan_capped(expr, g, Some(cap))?;
        Ok(self.run_plan(g))
    }

    /// Executes the current plan (the exec sweep shared by [`Self::eval`]
    /// and [`Self::try_eval_capped`]).
    fn run_plan(&mut self, g: &Graph) -> &EmbeddingTable {
        let _sp = gel_obs::span("eval.exec");
        if !self.root_sparse {
            let root_len = self.nodes[self.root].len;
            let mut root_data = self.root_table.take_data();
            if root_data.len() != root_len {
                // The previous result was moved out by `eval_owned`.
                self.pool.put(root_data);
                root_data = self.pool.take(root_len);
            }
            self.nodes[self.root].data = root_data;
        }
        for i in 0..self.nodes.len() {
            let mut data = std::mem::take(&mut self.nodes[i].data);
            let mut sp = std::mem::take(&mut self.nodes[i].sp);
            exec_node(&self.nodes, i, &mut data, &mut sp, g, self.n, &mut self.scratch);
            self.nodes[i].data = data;
            self.nodes[i].sp = sp;
        }
        if self.root_sparse {
            // Copy the root's coordinate list into the table's
            // persistent buffers (capacities survive across calls, so
            // the warmed path allocates nothing).
            let rsp = &self.nodes[self.root].sp;
            let (mut coords, mut vals) = self.root_table.take_storage();
            coords.clear();
            vals.clear();
            coords.extend_from_slice(rsp.coords());
            vals.extend_from_slice(rsp.values());
            self.root_table.set_sparse(coords, vals);
        } else {
            self.root_table.set_data(std::mem::take(&mut self.nodes[self.root].data));
        }
        &self.root_table
    }

    /// [`Self::eval`], but moves the result out of the engine. The
    /// next call re-acquires a root slab from the pool; use the
    /// borrowing variant on zero-allocation hot paths.
    pub fn eval_owned(&mut self, expr: &Expr, g: &Graph) -> EmbeddingTable {
        self.eval(expr, g);
        if self.root_table.is_sparse() {
            // Swap in an empty shell of the same shape so a later
            // cached-plan call still finds matching vars/dim.
            let shell = EmbeddingTable::from_sparse_parts(
                self.root_table.vars().to_vec(),
                self.root_table.dim(),
                self.n,
                Vec::new(),
                Vec::new(),
            );
            return std::mem::replace(&mut self.root_table, shell);
        }
        let vars = self.root_table.vars().to_vec();
        let dim = self.root_table.dim();
        let data = self.root_table.take_data();
        EmbeddingTable::from_parts(vars, dim, self.n, data)
    }

    /// Lowers a fresh plan unless the cached one already matches
    /// `(expr, g)`'s shape.
    fn ensure_plan(&mut self, expr: &Expr, g: &Graph) {
        self.ensure_plan_capped(expr, g, None).expect("uncapped lowering cannot exceed a cap");
    }

    /// [`Self::ensure_plan`] with an optional dense-slab cap: errors
    /// *before any storage is allocated* when some node needs a dense
    /// slab longer than `cap`. On error the engine keeps no cached key
    /// — the half-lowered plan skeleton (no buffers attached) is
    /// recycled by the next lowering.
    fn ensure_plan_capped(
        &mut self,
        expr: &Expr,
        g: &Graph,
        cap: Option<usize>,
    ) -> Result<(), PlanTooDense> {
        // Hash with a pointer memo at `Shared` boundaries — a naive
        // `structural_hash` would unfold the DAG.
        self.hash_memo.clear();
        let root_hash = dag_hash(expr, &mut self.hash_memo);
        let key = (
            root_hash,
            g.num_vertices(),
            g.label_dim(),
            self.opts.guard_fast_path,
            self.opts.sparse,
            self.opts.sparse_min_cells,
            self.opts.wco,
            self.opts.sparse_output,
        );
        if self.cache_key == Some(key) {
            // The cap is not part of the cache key: re-verify it
            // against the cached plan's dense slabs (cheap — node
            // counts are small).
            check_dense_cap(&self.nodes, cap)?;
            return Ok(());
        }
        let _sp = gel_obs::span("eval.lower");
        self.cache_key = None;
        // Recycle every buffer of the outgoing plan before lowering.
        for node in self.nodes.drain(..) {
            self.pool.put(node.data);
            let (coords, vals) = node.sp.into_parts();
            self.idx_pool.put(coords);
            self.pool.put(vals);
        }
        let (rcoords, rdata) = self.root_table.take_storage();
        self.idx_pool.put(rcoords);
        self.pool.put(rdata);
        self.root_table = EmbeddingTable::placeholder();
        self.node_of.clear();
        self.n = g.num_vertices();
        self.root = self.lower(expr, g).0;
        // Representation fixup. The root must exist densely — unless
        // `sparse_output` lets an already-sparse root skip the final
        // densify; a sparse atom nothing ever reads sparsely downgrades
        // to its (cheap) dense kernel instead of paying an
        // emit-then-scatter fallback.
        self.root_sparse = self.opts.sparse_output && self.nodes[self.root].sparse;
        if self.root_sparse {
            self.nodes[self.root].sparse_used = true;
        } else {
            self.nodes[self.root].needs_dense = true;
        }
        for i in 0..self.nodes.len() {
            let downgrade = {
                let nd = &self.nodes[i];
                nd.sparse && !nd.sparse_used && matches!(nd.kind, Kind::Edge { .. } | Kind::CmpEq)
            };
            if downgrade {
                self.nodes[i].sparse = false;
            }
        }
        // Dense-slab cap check *before* the deferred buffer allocation:
        // nothing has been allocated yet, so an error leaves only the
        // recyclable plan skeleton behind.
        check_dense_cap(&self.nodes, cap)?;
        for i in 0..self.nodes.len() {
            let (len, dim, sparse, needs_dense, est) = {
                let nd = &self.nodes[i];
                (nd.len, nd.dim, nd.sparse, nd.needs_dense, nd.est_nnz)
            };
            if !sparse || needs_dense {
                self.nodes[i].data = self.pool.take(len);
            }
            if sparse {
                let cap = est.max(1).min(len.max(1));
                let coords = self.idx_pool.take_cap(cap);
                let vals = self.pool.take_cap(cap * dim.max(1));
                self.nodes[i].sp = CoordList::with_buffers(dim, coords, vals);
            }
        }
        if self.root_sparse {
            let root = &self.nodes[self.root];
            let cap_est = root.est_nnz.max(1).min(root.len.max(1));
            let coords = self.idx_pool.take_cap(cap_est);
            let vals = self.pool.take_cap(cap_est * root.dim.max(1));
            self.root_table = EmbeddingTable::from_sparse_parts(
                root.vars.clone(),
                root.dim,
                self.n,
                coords,
                vals,
            );
        } else {
            let root = &mut self.nodes[self.root];
            let data = std::mem::take(&mut root.data);
            self.root_table = EmbeddingTable::from_parts(root.vars.clone(), root.dim, self.n, data);
        }
        // Size the shared serial-path scratch once per plan.
        let mut max_p = 0;
        let mut max_q = 0;
        let mut max_args = 0;
        for node in &self.nodes {
            max_p = max_p.max(node.vars.len());
            match &node.kind {
                Kind::AggDense { over_len, .. } => max_q = max_q.max(*over_len),
                Kind::Apply { args, .. } => max_args = max_args.max(args.len()),
                Kind::MulSparse { args, driver_pos, .. } => {
                    max_args = max_args.max(args.len());
                    max_q = max_q.max(driver_pos.len());
                }
                Kind::AggSparseValue { keep_strides, .. } => max_q = max_q.max(keep_strides.len()),
                Kind::AggSparseGuard { over_len, .. } => max_q = max_q.max(*over_len),
                _ => {}
            }
        }
        self.scratch.digits.resize(max_p, 0);
        self.scratch.inner_digits.resize(max_q, 0);
        self.scratch.offsets.resize(max_args, 0);
        self.cache_key = Some(key);
        PLAN_BUILDS.fetch_add(1, Ordering::Relaxed);
        OBS_PLAN_BUILDS.incr();
        OBS_PLAN_NODES.add(self.nodes.len() as u64);
        Ok(())
    }

    /// Recursively lowers `expr`, returning its node index and its
    /// [`Expr::structural_hash`]. Nodes are pushed children-first, so
    /// an in-order sweep executes the DAG. The hash is folded bottom-up
    /// from child hashes during this same walk ([`Expr::hash_header`]):
    /// the WL-simulation expressions physically embed copies of each
    /// round, so calling `structural_hash` per visited node — as the
    /// old memoizing interpreter did — rehashes every subtree and costs
    /// quadratic time, which dominated end-to-end evaluation.
    fn lower(&mut self, expr: &Expr, g: &Graph) -> (usize, u64) {
        if let Expr::Shared(rc) = expr {
            // `ensure_plan` hashed the whole DAG, so this is a lookup;
            // a hash hit skips the subtree entirely — shared rounds
            // lower exactly once.
            let h = dag_hash(expr, &mut self.hash_memo);
            if let Some(&i) = self.node_of.get(&h) {
                return (i, h);
            }
            return self.lower(rc, g);
        }
        if let Expr::Aggregate { agg, over, value, guard } = expr {
            return self.lower_aggregate(
                g,
                *agg,
                over,
                value,
                guard.as_deref(),
                expr.hash_header(),
            );
        }
        if let Expr::Apply { func, args } = expr {
            let mut key = expr.hash_header();
            let arg_nodes: Vec<usize> = args
                .iter()
                .map(|a| {
                    let (i, h) = self.lower(a, g);
                    key = crate::ast::hash_mix(key, h);
                    i
                })
                .collect();
            if let Some(&i) = self.node_of.get(&key) {
                return (i, key);
            }
            let mut vars: Vec<Var> =
                arg_nodes.iter().flat_map(|&i| self.nodes[i].vars.iter().copied()).collect();
            vars.sort_unstable();
            vars.dedup();
            let d_in: usize = arg_nodes.iter().map(|&i| self.nodes[i].dim).sum();
            let d_out = func.out_dim(d_in).expect("ill-typed Apply");
            // Sparse product: a scalar Mul with sparse operands stays
            // sparse — the cheapest sparse operand to expand drives,
            // the rest are probed (dense gather or binary search).
            if matches!(func, Func::Mul { dim: 1, .. }) && self.opts.sparse {
                let cells = self.n.checked_pow(vars.len() as u32).expect("table too large");
                // Driver choice: cheapest expansion bound, which for a
                // fixed output scope is the same ordering as lowest
                // factor density.
                let mut best: Option<(usize, usize)> = None;
                let mut density_product = 1.0f64;
                for (ai, &i) in arg_nodes.iter().enumerate() {
                    if !self.nodes[i].sparse {
                        // Dense factors are probed, not expanded; with
                        // no nnz statistic they count as density 1.
                        continue;
                    }
                    let missing = (vars.len() - self.nodes[i].vars.len()) as u32;
                    let bound = self.n.pow(missing).saturating_mul(self.nodes[i].est_nnz);
                    density_product *= self.node_density(i);
                    if best.is_none_or(|(be, _)| bound < be) {
                        best = Some((bound, ai));
                    }
                }
                if let Some((bound, driver)) = best {
                    // Output-nnz estimate under factor independence:
                    // |out| ≈ cells · Π densᵢ. Each density comes from
                    // the factors' own statistics — for `Edge` leaves
                    // that is the graph's arc count (the same `m/n²`
                    // a store segment header reports without touching
                    // adjacency). The driver's expansion bound caps
                    // the estimate: the kernel can never emit more
                    // coordinates than the driver expands to.
                    let est = ((cells as f64) * density_product).ceil() as usize;
                    // Cyclic Mul chains make the independence product
                    // overshoot (it counts each shared variable's
                    // selectivity once per factor pair); the AGM
                    // fractional-cover bound over the sparse factors is
                    // a hard output cap, so take the minimum. Variables
                    // bound only by dense (probed) operands contribute
                    // a full factor `n` each.
                    let mut scopes: Vec<Vec<u32>> = Vec::new();
                    let mut log_sizes: Vec<f64> = Vec::new();
                    let mut in_scope = vec![false; vars.len()];
                    for &i in &arg_nodes {
                        if !self.nodes[i].sparse {
                            continue;
                        }
                        let scope: Vec<u32> = self.nodes[i]
                            .vars
                            .iter()
                            .map(|v| vars.iter().position(|u| u == v).expect("arg var free") as u32)
                            .collect();
                        for &p in &scope {
                            in_scope[p as usize] = true;
                        }
                        scopes.push(scope);
                        log_sizes.push((self.nodes[i].est_nnz.max(1) as f64).ln());
                    }
                    let uncovered = in_scope.iter().filter(|&&b| !b).count();
                    let log_agm =
                        gel_graph::elim::agm_cover_log_bound(vars.len(), &scopes, &log_sizes)
                            + uncovered as f64 * (self.n.max(1) as f64).ln();
                    let est = est.min(log_bound_to_count(log_agm));
                    let est = est.clamp(1, bound.max(1));
                    if self.sparse_ok(cells, est) {
                        for &i in &arg_nodes {
                            if self.nodes[i].sparse {
                                self.nodes[i].sparse_used = true;
                            } else {
                                self.nodes[i].needs_dense = true;
                            }
                        }
                        let specs: Vec<MulArg> = arg_nodes
                            .iter()
                            .map(|&i| MulArg {
                                node: i,
                                dim: self.nodes[i].dim,
                                sparse: self.nodes[i].sparse,
                                strides: strides_for(
                                    &self.nodes[i].vars,
                                    self.nodes[i].dim,
                                    &vars,
                                    self.n,
                                ),
                            })
                            .collect();
                        let dvars = &self.nodes[arg_nodes[driver]].vars;
                        let driver_pos: Vec<usize> = dvars
                            .iter()
                            .map(|v| vars.iter().position(|u| u == v).expect("driver var free"))
                            .collect();
                        let expand_pos: Vec<usize> =
                            (0..vars.len()).filter(|i| !dvars.contains(&vars[*i])).collect();
                        let mut node = self.make_node(
                            vars,
                            d_out,
                            Kind::MulSparse {
                                func: func.clone(),
                                args: specs,
                                driver,
                                driver_pos,
                                expand_pos,
                            },
                        );
                        node.sparse = true;
                        node.est_nnz = est;
                        return (self.push_node(node, key), key);
                    }
                }
            }
            for &i in &arg_nodes {
                self.nodes[i].needs_dense = true;
            }
            let specs = arg_nodes
                .iter()
                .map(|&i| ArgSpec {
                    node: i,
                    dim: self.nodes[i].dim,
                    strides: strides_for(&self.nodes[i].vars, self.nodes[i].dim, &vars, self.n),
                })
                .collect();
            let node =
                self.make_node(vars, d_out, Kind::Apply { func: func.clone(), args: specs, d_in });
            return (self.push_node(node, key), key);
        }
        // Leaves: the header is the full structural hash.
        let key = expr.hash_header();
        if let Some(&i) = self.node_of.get(&key) {
            return (i, key);
        }
        let node = match expr {
            Expr::Label { j, var } => {
                assert!(
                    *j < g.label_dim(),
                    "label component {j} out of range (dim {})",
                    g.label_dim()
                );
                self.make_node(vec![*var], 1, Kind::Label { j: *j })
            }
            Expr::LabelVec { var, dim } => {
                assert_eq!(
                    *dim,
                    g.label_dim(),
                    "LabelVec dimension does not match the graph's label dimension"
                );
                self.make_node(vec![*var], *dim, Kind::LabelVec)
            }
            Expr::Edge { from, to } => {
                let mut vars = vec![*from, *to];
                vars.sort_unstable();
                let flip = vars[0] != *from;
                let mut node = self.make_node(vars, 1, Kind::Edge { flip });
                node.est_nnz = g.num_arcs();
                node.sparse = self.sparse_ok(node.len, node.est_nnz);
                node
            }
            Expr::Cmp { a, op, b } => {
                let mut vars = vec![*a, *b];
                vars.sort_unstable();
                let kind = match op {
                    CmpOp::Eq => Kind::CmpEq,
                    CmpOp::Ne => Kind::CmpNe,
                };
                let mut node = self.make_node(vars, 1, kind);
                if matches!(op, CmpOp::Eq) {
                    // The diagonal: n of n² cells.
                    node.est_nnz = self.n;
                    node.sparse = self.sparse_ok(node.len, node.est_nnz);
                }
                node
            }
            Expr::Const { values } => {
                self.make_node(Vec::new(), values.len(), Kind::Const { values: values.clone() })
            }
            Expr::Apply { .. } | Expr::Aggregate { .. } | Expr::Shared(_) => {
                unreachable!("handled above")
            }
        };
        (self.push_node(node, key), key)
    }

    fn push_node(&mut self, node: Node, key: u64) -> usize {
        let i = self.nodes.len();
        self.nodes.push(node);
        self.node_of.insert(key, i);
        i
    }

    fn lower_aggregate(
        &mut self,
        g: &Graph,
        agg: Agg,
        over: &[Var],
        value: &Expr,
        guard: Option<&Expr>,
        header: u64,
    ) -> (usize, u64) {
        let n = self.n;

        // Fast path: single aggregation variable with an edge guard
        // anchored at a free variable — the MPNN neighbourhood shape
        // (DESIGN.md §6 ablation; same detection as the oracle).
        if self.opts.guard_fast_path && over.len() == 1 {
            if let Some(ge @ Expr::Edge { from, to }) = guard {
                let y = over[0];
                let anchor = if *to == y { Some((*from, true)) } else { None }.or(if *from == y {
                    Some((*to, false))
                } else {
                    None
                });
                if let Some((x, outgoing)) = anchor {
                    if x != y {
                        let (vi, vh) = self.lower(value, g);
                        self.nodes[vi].needs_dense = true;
                        // The guard is an `Edge` leaf, so its header is
                        // its full structural hash.
                        let key = crate::ast::hash_mix(
                            crate::ast::hash_mix(header, vh),
                            ge.hash_header(),
                        );
                        if let Some(&i) = self.node_of.get(&key) {
                            return (i, key);
                        }
                        let vnode = &self.nodes[vi];
                        let dim = vnode.dim;
                        let mut out_vars: Vec<Var> =
                            vnode.vars.iter().copied().filter(|&v| v != y).collect();
                        if !out_vars.contains(&x) {
                            out_vars.push(x);
                            out_vars.sort_unstable();
                        }
                        let value = AccSpec {
                            node: vi,
                            outer_strides: strides_for(&vnode.vars, dim, &out_vars, n),
                            inner_strides: Vec::new(),
                        };
                        let y_stride = strides_for(&vnode.vars, dim, &[y], n)[0];
                        let x_pos = out_vars.iter().position(|&v| v == x).expect("x is free");
                        let node = self.make_node(
                            out_vars,
                            dim,
                            Kind::AggNbr { agg, value, x_pos, y_stride, outgoing },
                        );
                        return (self.push_node(node, key), key);
                    }
                }
            }
        }

        // FAQ-style variable elimination: a `Sum` whose value (and
        // guard, if any) decomposes into a product of 0/1 edge/equality
        // indicators is a sum-product query — contract the aggregated
        // variables in min-degree order over sparse factors instead of
        // sweeping the dense `n^k` cross product (paper slide 70).
        if self.opts.sparse && agg == Agg::Sum && !over.is_empty() {
            let mut atoms: Vec<&Expr> = Vec::new();
            let ok = collect_indicator_atoms(value, &mut atoms)
                && guard.is_none_or(|g0| collect_indicator_atoms(g0, &mut atoms));
            if ok && !atoms.is_empty() {
                let mut all: Vec<Var> =
                    atoms.iter().flat_map(|a| atom_vars(a)).chain(over.iter().copied()).collect();
                all.sort_unstable();
                all.dedup();
                let cells = n.checked_pow(all.len() as u32).unwrap_or(usize::MAX);
                if cells >= self.opts.sparse_min_cells {
                    let vh = dag_hash(value, &mut self.hash_memo);
                    let mut key = crate::ast::hash_mix(header, vh);
                    if let Some(g0) = guard {
                        key = crate::ast::hash_mix(key, dag_hash(g0, &mut self.hash_memo));
                    }
                    if let Some(&i) = self.node_of.get(&key) {
                        return (i, key);
                    }
                    let mut factors = Vec::with_capacity(atoms.len());
                    let mut factor_vars = Vec::with_capacity(atoms.len());
                    for a in &atoms {
                        let (fi, _) = self.lower(a, g);
                        self.nodes[fi].sparse = true;
                        self.nodes[fi].sparse_used = true;
                        factors.push(fi);
                        factor_vars.push(self.nodes[fi].vars.clone());
                    }
                    let scopes: Vec<Vec<u32>> = factor_vars
                        .iter()
                        .map(|fv| {
                            fv.iter()
                                .map(|v| all.iter().position(|u| u == v).unwrap() as u32)
                                .collect()
                        })
                        .collect();
                    let eliminable: Vec<bool> = all.iter().map(|v| over.contains(v)).collect();
                    let (order_ids, width) =
                        gel_graph::elim::min_degree_order_masked(all.len(), &scopes, &eliminable);
                    let free_over = all
                        .iter()
                        .filter(|v| {
                            over.contains(v) && !factor_vars.iter().any(|fv| fv.contains(v))
                        })
                        .count() as u32;
                    let out_vars: Vec<Var> =
                        all.iter().copied().filter(|v| !over.contains(v)).collect();
                    // Cyclic residual (induced width ≥ 2): binary
                    // merge-joins materialize intermediates that can
                    // exceed the output (triangles, k-cycles,
                    // k-cliques), so take the worst-case-optimal
                    // multiway join instead — its work is capped by the
                    // AGM fractional-cover bound. Free variables lead
                    // the order ascending so output entries emerge in
                    // dense layout order; aggregated variables follow
                    // in cheapest-incident-factor-first order.
                    if self.opts.wco && width >= 2 && factors.len() <= MAX_WCO_FACTORS {
                        let sizes: Vec<f64> =
                            factors.iter().map(|&fi| self.nodes[fi].est_nnz as f64).collect();
                        let elim_ids = gel_graph::elim::wco_order_masked(
                            all.len(),
                            &scopes,
                            &sizes,
                            &eliminable,
                        );
                        let mut order: Vec<Var> = out_vars.clone();
                        // Aggregated variables in no factor stay out of
                        // the join order — they are the exact
                        // `n^free_over` multiplier.
                        order.extend(
                            elim_ids
                                .iter()
                                .map(|&i| all[i as usize])
                                .filter(|v| factor_vars.iter().any(|fv| fv.contains(v))),
                        );
                        let n_free = out_vars.len();
                        let out_cells = n.checked_pow(n_free as u32).unwrap_or(usize::MAX);
                        let log_sizes: Vec<f64> = factors
                            .iter()
                            .map(|&fi| (self.nodes[fi].est_nnz.max(1) as f64).ln())
                            .collect();
                        // The AGM bound on the full join also bounds
                        // the output nnz (every output tuple extends to
                        // at least one join tuple).
                        let agm =
                            gel_graph::elim::agm_cover_log_bound(all.len(), &scopes, &log_sizes);
                        let est = log_bound_to_count(agm);
                        let mut node = self.make_node(
                            out_vars,
                            1,
                            Kind::JoinWco { factors, factor_vars, order, n_free, free_over },
                        );
                        node.sparse = true;
                        node.est_nnz = est.clamp(1, out_cells.max(1));
                        return (self.push_node(node, key), key);
                    }
                    let order: Vec<Var> = order_ids.iter().map(|&i| all[i as usize]).collect();
                    let node = self.make_node(
                        out_vars,
                        1,
                        Kind::AggElim { factors, factor_vars, order, free_over },
                    );
                    return (self.push_node(node, key), key);
                }
            }
        }

        let (vi, vh) = self.lower(value, g);
        let mut key = crate::ast::hash_mix(header, vh);
        let gi = guard.map(|ge| {
            let (i, h) = self.lower(ge, g);
            key = crate::ast::hash_mix(key, h);
            i
        });
        if let Some(&i) = self.node_of.get(&key) {
            return (i, key);
        }
        // Output variables: (value ∪ guard vars) \ over.
        let mut all: Vec<Var> = self.nodes[vi].vars.clone();
        if let Some(gi) = gi {
            all.extend_from_slice(&self.nodes[gi].vars);
        }
        all.sort_unstable();
        all.dedup();
        let out_vars: Vec<Var> = all.iter().copied().filter(|v| !over.contains(v)).collect();
        let over_sorted: Vec<Var> = {
            let mut o = over.to_vec();
            o.sort_unstable();
            o
        };
        let dim = self.nodes[vi].dim;

        // Unguarded Sum/Mean over a sparse value that binds every
        // aggregated variable: stream the entries once. Skipping the
        // absent (zero) addends is bit-identical — the accumulator
        // starts at `+0.0` and addition can never make it `-0.0`.
        if gi.is_none()
            && self.nodes[vi].sparse
            && matches!(agg, Agg::Sum | Agg::Mean)
            && over.iter().all(|v| self.nodes[vi].vars.contains(v))
        {
            self.nodes[vi].sparse_used = true;
            let p_out = out_vars.len();
            let vvars = self.nodes[vi].vars.clone();
            let keep_strides: Vec<usize> = vvars
                .iter()
                .map(|v| match out_vars.iter().position(|u| u == v) {
                    Some(pos) => n.pow((p_out - 1 - pos) as u32),
                    None => 0,
                })
                .collect();
            let inner_cells =
                n.checked_pow(over_sorted.len() as u32).expect("too many aggregated variables");
            let node = self.make_node(
                out_vars,
                dim,
                Kind::AggSparseValue { agg, value: vi, keep_strides, inner_cells },
            );
            return (self.push_node(node, key), key);
        }

        // A sparse scalar guard that binds every aggregated variable:
        // its entry runs replace the dense inner odometer, in the same
        // per-cell visit order (coordinate order restricted to one
        // output cell IS the inner odometer order).
        if let Some(gn) = gi {
            if self.nodes[gn].sparse
                && self.nodes[gn].dim == 1
                && over.iter().all(|v| self.nodes[gn].vars.contains(v))
            {
                self.nodes[gn].sparse_used = true;
                self.nodes[vi].needs_dense = true;
                let q = over_sorted.len();
                let over_pow = n.checked_pow(q as u32).expect("too many aggregated variables");
                let gv = self.nodes[gn].vars.clone();
                let gout: Vec<Var> =
                    gv.iter().copied().filter(|v| !over_sorted.contains(v)).collect();
                let gkey_strides: Vec<usize> = gv
                    .iter()
                    .map(|v| match over_sorted.iter().position(|u| u == v) {
                        Some(r) => n.pow((q - 1 - r) as u32),
                        None => {
                            let r2 = gv
                                .iter()
                                .filter(|u| !over_sorted.contains(u))
                                .position(|u| u == v)
                                .expect("free guard var");
                            n.pow((gout.len() - 1 - r2) as u32) * over_pow
                        }
                    })
                    .collect();
                let gkey_identity = gkey_strides
                    .iter()
                    .enumerate()
                    .all(|(i, &ks)| ks == n.pow((gv.len() - 1 - i) as u32));
                let gkey_outer: Vec<usize> = out_vars
                    .iter()
                    .map(|v| match gout.iter().position(|u| u == v) {
                        Some(r2) => n.pow((gout.len() - 1 - r2) as u32),
                        None => 0,
                    })
                    .collect();
                let value_spec = AccSpec {
                    node: vi,
                    outer_strides: strides_for(&self.nodes[vi].vars, dim, &out_vars, n),
                    inner_strides: strides_for(&self.nodes[vi].vars, dim, &over_sorted, n),
                };
                let node = self.make_node(
                    out_vars,
                    dim,
                    Kind::AggSparseGuard {
                        agg,
                        value: value_spec,
                        guard: gn,
                        gkey_strides,
                        gkey_identity,
                        gkey_outer,
                        over_pow,
                        over_len: q,
                    },
                );
                return (self.push_node(node, key), key);
            }
        }

        self.nodes[vi].needs_dense = true;
        if let Some(gi) = gi {
            self.nodes[gi].needs_dense = true;
        }
        let value_spec = AccSpec {
            node: vi,
            outer_strides: strides_for(&self.nodes[vi].vars, dim, &out_vars, n),
            inner_strides: strides_for(&self.nodes[vi].vars, dim, &over_sorted, n),
        };
        let guard_spec = gi.map(|gi| AccSpec {
            node: gi,
            outer_strides: strides_for(&self.nodes[gi].vars, self.nodes[gi].dim, &out_vars, n),
            inner_strides: strides_for(&self.nodes[gi].vars, self.nodes[gi].dim, &over_sorted, n),
        });
        let inner_cells =
            n.checked_pow(over_sorted.len() as u32).expect("too many aggregated variables");
        assert!(over_sorted.len() <= ZERO_STRIDES.len(), "too many aggregated variables");
        let node = self.make_node(
            out_vars,
            dim,
            Kind::AggDense {
                agg,
                value: value_spec,
                guard: guard_spec,
                over_len: over_sorted.len(),
                inner_cells,
            },
        );
        (self.push_node(node, key), key)
    }

    /// Builds a plan node with *deferred* storage: slabs and coordinate
    /// buffers are attached by the representation pass in
    /// [`Self::ensure_plan`], once consumers have voted on `needs_dense`
    /// / `sparse_used`.
    fn make_node(&mut self, vars: Vec<Var>, dim: usize, kind: Kind) -> Node {
        assert!(vars.windows(2).all(|w| w[0] < w[1]), "vars must be strictly ascending");
        let cells = self.n.checked_pow(vars.len() as u32).expect("table too large");
        let len = cells.checked_mul(dim).expect("table too large");
        Node {
            vars,
            dim,
            len,
            data: Vec::new(),
            sp: CoordList::default(),
            kind,
            sparse: false,
            needs_dense: false,
            sparse_used: false,
            est_nnz: 0,
        }
    }

    /// The density/size heuristic (DESIGN.md §7): a node goes sparse
    /// only when its dense table is big enough for the kernels'
    /// constant factors to amortize AND the estimated nonzeros are at
    /// most a quarter of the cells. The estimate fed here is no longer
    /// the driver's loose `n^missing · nnz` expansion bound but the
    /// density-product estimate derived from graph statistics (arc
    /// count / density — what a store segment header exposes), so
    /// products of several sparse factors now qualify where the old
    /// bound pessimistically kept them dense. `sparse_min_cells == 0`
    /// forces sparse wherever representable — the property-test hook.
    fn sparse_ok(&self, cells: usize, est: usize) -> bool {
        self.opts.sparse
            && (self.opts.sparse_min_cells == 0
                || (cells >= self.opts.sparse_min_cells && est.saturating_mul(4) <= cells))
    }

    /// `est_nnz / cells` for a node, clamped to `[0, 1]` (scalar
    /// tables only: `len == cells` when `dim == 1`).
    fn node_density(&self, i: usize) -> f64 {
        let nd = &self.nodes[i];
        let cells = (nd.len / nd.dim.max(1)).max(1);
        nd.est_nnz.min(cells) as f64 / cells as f64
    }
}

/// [`Expr::structural_hash`] with a pointer memo at [`Expr::Shared`]
/// boundaries: linear in the DAG's distinct nodes where the naive
/// recursion is linear in its (exponential) unfolding. Produces
/// identical values — `Shared` is transparent to the hash.
fn dag_hash(e: &Expr, memo: &mut HashMap<usize, u64>) -> u64 {
    match e {
        Expr::Shared(rc) => {
            let p = std::sync::Arc::as_ptr(rc) as usize;
            if let Some(&h) = memo.get(&p) {
                return h;
            }
            let h = dag_hash(rc, memo);
            memo.insert(p, h);
            h
        }
        Expr::Apply { args, .. } => {
            let mut h = e.hash_header();
            for a in args {
                h = crate::ast::hash_mix(h, dag_hash(a, memo));
            }
            h
        }
        Expr::Aggregate { value, guard, .. } => {
            let mut h = crate::ast::hash_mix(e.hash_header(), dag_hash(value, memo));
            if let Some(g) = guard {
                h = crate::ast::hash_mix(h, dag_hash(g, memo));
            }
            h
        }
        _ => e.hash_header(),
    }
}

/// Collects the leaves of a product of 0/1 indicator atoms: edge atoms
/// and `=` comparisons, possibly nested under scalar `Func::Mul` and
/// `Shared`. Returns `false` (leaving `out` in an unspecified state)
/// when the expression contains anything else — the elimination path
/// only fires on pure sum-product queries, where 0/1 factors keep
/// every partial sum an exact integer.
fn collect_indicator_atoms<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) -> bool {
    match e {
        Expr::Shared(rc) => collect_indicator_atoms(rc, out),
        Expr::Edge { .. } | Expr::Cmp { op: CmpOp::Eq, .. } => {
            out.push(e);
            true
        }
        Expr::Apply { func: Func::Mul { dim: 1, .. }, args } => {
            args.iter().all(|a| collect_indicator_atoms(a, out))
        }
        _ => false,
    }
}

/// The (≤ 2) variables of an indicator atom.
fn atom_vars(e: &Expr) -> [Var; 2] {
    match e {
        Expr::Edge { from, to } => [*from, *to],
        Expr::Cmp { a, b, .. } => [*a, *b],
        _ => unreachable!("not an indicator atom"),
    }
}

/// Converts a natural-log size bound
/// ([`gel_graph::elim::agm_cover_log_bound`]) to a saturating count.
fn log_bound_to_count(log_bound: f64) -> usize {
    if log_bound < (usize::MAX as f64 / 4.0).ln() {
        log_bound.exp().ceil() as usize
    } else {
        usize::MAX
    }
}

/// Strides of a child table (vars `child_vars`, cell width
/// `child_dim`) per digit of an odometer running over `digit_vars`:
/// the flat element offset the child moves by when that digit
/// increments (0 when the digit's variable is not free in the child).
fn strides_for(child_vars: &[Var], child_dim: usize, digit_vars: &[Var], n: usize) -> Vec<usize> {
    digit_vars
        .iter()
        .map(|v| match child_vars.iter().position(|cv| cv == v) {
            Some(pos) => child_dim * n.pow((child_vars.len() - 1 - pos) as u32),
            None => 0,
        })
        .collect()
}

/// Writes the base-`n` digits of `cell` (most significant first).
#[inline]
fn decompose(mut cell: usize, n: usize, digits: &mut [usize]) {
    for d in digits.iter_mut().rev() {
        *d = cell % n;
        cell /= n;
    }
    debug_assert_eq!(cell, 0);
}

#[inline]
fn dot(digits: &[usize], strides: &[usize]) -> usize {
    digits.iter().zip(strides).map(|(d, s)| d * s).sum()
}

/// Advances the output odometer by one cell, updating two incremental
/// offsets (`o1`/`o2`) by their per-digit strides. Must not be called
/// past the last cell of the range.
#[inline]
fn advance2(
    digits: &mut [usize],
    n: usize,
    s1: &[usize],
    o1: &mut usize,
    s2: &[usize],
    o2: &mut usize,
) {
    let mut j = digits.len();
    loop {
        debug_assert!(j > 0, "advanced past the last assignment");
        j -= 1;
        digits[j] += 1;
        if digits[j] < n {
            *o1 += s1[j];
            *o2 += s2[j];
            return;
        }
        digits[j] = 0;
        *o1 -= s1[j] * (n - 1);
        *o2 -= s2[j] * (n - 1);
    }
}

/// One [`crate::func::AggState::push`], inlined against the output
/// cell (which starts zeroed): identical fold order and operations,
/// so aggregates are bit-identical to the oracle's.
#[inline]
fn push_acc(agg: Agg, acc: &mut [f64], x: &[f64], count: usize) {
    match agg {
        Agg::Sum | Agg::Mean => {
            for (a, &v) in acc.iter_mut().zip(x) {
                *a += v;
            }
        }
        Agg::Max => {
            if count == 0 {
                acc.copy_from_slice(x);
            } else {
                for (a, &v) in acc.iter_mut().zip(x) {
                    *a = a.max(v);
                }
            }
        }
        Agg::Min => {
            if count == 0 {
                acc.copy_from_slice(x);
            } else {
                for (a, &v) in acc.iter_mut().zip(x) {
                    *a = a.min(v);
                }
            }
        }
    }
}

/// Splits `total_cells` into contiguous per-thread ranges (element
/// bounds, cell-aligned) for `rayon::par_parts_mut`.
fn chunk_bounds(bounds: &mut Vec<usize>, total_cells: usize, dim: usize) -> bool {
    let threads = rayon::current_num_threads();
    if threads < 2 || total_cells < 2 {
        return false;
    }
    let parts = threads.min(total_cells);
    bounds.clear();
    for t in 0..=parts {
        bounds.push(total_cells * t / parts * dim);
    }
    true
}

fn exec_node(
    nodes: &[Node],
    i: usize,
    out: &mut [f64],
    sp: &mut CoordList,
    g: &Graph,
    n: usize,
    scratch: &mut ExecScratch,
) {
    let node = &nodes[i];
    let d = node.dim;
    match &node.kind {
        Kind::Label { j } => {
            for (v, o) in out.iter_mut().enumerate() {
                *o = g.label(v as Vertex)[*j];
            }
        }
        Kind::LabelVec => {
            for v in 0..n {
                out[v * d..(v + 1) * d].copy_from_slice(g.label(v as Vertex));
            }
        }
        Kind::Edge { flip } if node.sparse => {
            let _ss = gel_obs::span("sparse.exec");
            sp.reset(1);
            for (u, v) in g.arcs() {
                let (a, b) = if *flip { (v, u) } else { (u, v) };
                sp.push1(a as usize * n + b as usize, 1.0);
            }
            if *flip {
                // CSR iterates (u asc, v asc): already sorted unless
                // the variable order swaps the digits.
                sp.sort_entries(&mut scratch.join);
            }
            note_sparse(sp.len());
            if node.needs_dense {
                densify(sp, out);
            }
        }
        Kind::Edge { flip } => {
            out.fill(0.0);
            for (u, v) in g.arcs() {
                let (a, b) = if *flip { (v, u) } else { (u, v) };
                out[a as usize * n + b as usize] = 1.0;
            }
        }
        Kind::CmpEq if node.sparse => {
            let _ss = gel_obs::span("sparse.exec");
            sp.reset(1);
            for v in 0..n {
                sp.push1(v * n + v, 1.0);
            }
            note_sparse(sp.len());
            if node.needs_dense {
                densify(sp, out);
            }
        }
        // Only the diagonal differs from the constant fill, so neither
        // comparison kernel visits all n² cells cell-by-cell.
        Kind::CmpEq => {
            out.fill(0.0);
            for v in 0..n {
                out[v * n + v] = 1.0;
            }
        }
        Kind::CmpNe => {
            out.fill(1.0);
            for v in 0..n {
                out[v * n + v] = 0.0;
            }
        }
        Kind::Const { values } => out.copy_from_slice(values),
        Kind::Apply { func, args, d_in } => {
            let p = node.vars.len();
            let total = node.len.checked_div(d).unwrap_or(0);
            let work = total.saturating_mul(d_in + d);
            if work >= PAR_MIN_WORK && chunk_bounds(&mut scratch.bounds, total, d) {
                let bounds = &scratch.bounds[..];
                rayon::par_parts_mut(out, bounds, |t, part| {
                    let mut input = Vec::with_capacity(*d_in);
                    let mut result = Vec::with_capacity(d);
                    let mut digits = vec![0usize; p];
                    let mut offsets = vec![0usize; args.len()];
                    run_apply(
                        nodes,
                        func,
                        args,
                        part,
                        bounds[t] / d.max(1),
                        part.len() / d.max(1),
                        n,
                        d,
                        &mut input,
                        &mut result,
                        &mut digits,
                        &mut offsets,
                    );
                });
            } else {
                let digits = &mut scratch.digits[..p];
                let offsets = &mut scratch.offsets[..args.len()];
                run_apply(
                    nodes,
                    func,
                    args,
                    out,
                    0,
                    total,
                    n,
                    d,
                    &mut scratch.input,
                    &mut scratch.result,
                    digits,
                    offsets,
                );
            }
        }
        Kind::AggDense { agg, value, guard, over_len, inner_cells } => {
            let p = node.vars.len();
            let total = node.len.checked_div(d).unwrap_or(0);
            let work = total.saturating_mul(*inner_cells).saturating_mul(d.max(1));
            if work >= PAR_MIN_WORK && chunk_bounds(&mut scratch.bounds, total, d) {
                let bounds = &scratch.bounds[..];
                rayon::par_parts_mut(out, bounds, |t, part| {
                    let mut digits = vec![0usize; p];
                    let mut inner_digits = vec![0usize; *over_len];
                    run_agg_dense(
                        nodes,
                        *agg,
                        value,
                        guard.as_ref(),
                        part,
                        bounds[t] / d.max(1),
                        part.len() / d.max(1),
                        n,
                        d,
                        *inner_cells,
                        &mut digits,
                        &mut inner_digits,
                    );
                });
            } else {
                let (digits, inner_digits) =
                    (&mut scratch.digits[..p], &mut scratch.inner_digits[..*over_len]);
                run_agg_dense(
                    nodes,
                    *agg,
                    value,
                    guard.as_ref(),
                    out,
                    0,
                    total,
                    n,
                    d,
                    *inner_cells,
                    digits,
                    inner_digits,
                );
            }
        }
        Kind::AggNbr { agg, value, x_pos, y_stride, outgoing } => {
            let p = node.vars.len();
            let total = node.len.checked_div(d).unwrap_or(0);
            let avg_deg = g.num_arcs() / n.max(1) + 1;
            let work = total.saturating_mul(avg_deg).saturating_mul(d.max(1));
            if work >= PAR_MIN_WORK && chunk_bounds(&mut scratch.bounds, total, d) {
                let bounds = &scratch.bounds[..];
                rayon::par_parts_mut(out, bounds, |t, part| {
                    let mut digits = vec![0usize; p];
                    run_agg_nbr(
                        nodes,
                        g,
                        *agg,
                        value,
                        *x_pos,
                        *y_stride,
                        *outgoing,
                        part,
                        bounds[t] / d.max(1),
                        part.len() / d.max(1),
                        n,
                        d,
                        &mut digits,
                    );
                });
            } else {
                let digits = &mut scratch.digits[..p];
                run_agg_nbr(
                    nodes, g, *agg, value, *x_pos, *y_stride, *outgoing, out, 0, total, n, d,
                    digits,
                );
            }
        }
        // The sparse kernels run serially — their cost is O(nnz), far
        // below the dense parallel threshold — so any thread count
        // replays the identical fold order for free. Each wraps in a
        // "sparse.exec" span: nested under eval.exec, the leaf-time
        // accounting attributes sparse time to `sparse.*` instead.
        Kind::MulSparse { func, args, driver, driver_pos, expand_pos } => {
            let _ss = gel_obs::span("sparse.exec");
            sp.reset(d);
            let p = node.vars.len();
            let dl = driver_pos.len();
            run_mul_sparse(
                nodes,
                func,
                args,
                *driver,
                driver_pos,
                expand_pos,
                sp,
                n,
                &mut scratch.input,
                &mut scratch.result,
                &mut scratch.digits[..p],
                &mut scratch.inner_digits[..dl],
                &mut scratch.join,
            );
            note_sparse(sp.len());
            if node.needs_dense {
                densify(sp, out);
            }
        }
        Kind::AggSparseValue { agg, value, keep_strides, inner_cells } => {
            let _ss = gel_obs::span("sparse.exec");
            run_agg_sparse_value(
                nodes,
                *agg,
                *value,
                keep_strides,
                *inner_cells,
                out,
                n,
                d,
                &mut scratch.inner_digits[..keep_strides.len()],
            );
        }
        Kind::AggSparseGuard {
            agg,
            value,
            guard,
            gkey_strides,
            gkey_identity,
            gkey_outer,
            over_pow,
            over_len,
        } => {
            let _ss = gel_obs::span("sparse.exec");
            rekey_into(&nodes[*guard].sp, n, gkey_strides, *gkey_identity, &mut scratch.gkeys);
            let p = node.vars.len();
            run_agg_sparse_guard(
                nodes,
                *agg,
                value,
                *guard,
                &scratch.gkeys,
                gkey_outer,
                *over_pow,
                out,
                n,
                d,
                &mut scratch.digits[..p],
                &mut scratch.inner_digits[..*over_len],
            );
        }
        Kind::AggElim { factors, factor_vars, order, free_over } => {
            let _ss = gel_obs::span("sparse.exec");
            run_agg_elim(nodes, factors, factor_vars, order, *free_over, out, n, scratch);
        }
        Kind::JoinWco { factors, factor_vars, order, n_free, free_over } => {
            let _ss = gel_obs::span("sparse.exec");
            run_join_wco(nodes, factors, factor_vars, order, *n_free, *free_over, sp, n, scratch);
            note_sparse(sp.len());
            if node.needs_dense {
                densify(sp, out);
            }
        }
    }
}

/// The `Apply` kernel over a contiguous output-cell range: gather each
/// argument's cell through its incremental offset into one packed
/// input row, apply `func`, write the result row. Identical per-cell
/// order to the oracle's `for_each_assignment` loop.
#[allow(clippy::too_many_arguments)]
fn run_apply(
    nodes: &[Node],
    func: &Func,
    args: &[ArgSpec],
    out: &mut [f64],
    start_cell: usize,
    cells: usize,
    n: usize,
    d: usize,
    input: &mut Vec<f64>,
    result: &mut Vec<f64>,
    digits: &mut [usize],
    offsets: &mut [usize],
) {
    if cells == 0 {
        return;
    }
    decompose(start_cell, n, digits);
    for (o, arg) in offsets.iter_mut().zip(args) {
        *o = dot(digits, &arg.strides);
    }
    for c in 0..cells {
        input.clear();
        for (o, arg) in offsets.iter().zip(args) {
            input.extend_from_slice(&nodes[arg.node].data[*o..*o + arg.dim]);
        }
        func.apply(input, result);
        out[c * d..(c + 1) * d].copy_from_slice(result);
        if c + 1 < cells {
            advance_args(digits, n, args, offsets);
        }
    }
}

#[inline]
fn advance_args(digits: &mut [usize], n: usize, args: &[ArgSpec], offsets: &mut [usize]) {
    let mut j = digits.len();
    loop {
        debug_assert!(j > 0, "advanced past the last assignment");
        j -= 1;
        digits[j] += 1;
        if digits[j] < n {
            for (o, arg) in offsets.iter_mut().zip(args) {
                *o += arg.strides[j];
            }
            return;
        }
        digits[j] = 0;
        for (o, arg) in offsets.iter_mut().zip(args) {
            *o -= arg.strides[j] * (n - 1);
        }
    }
}

/// The dense aggregation kernel: for every output assignment, stream
/// the inner odometer over the aggregated variables and fold passing
/// value cells straight into the (pre-zeroed) output cell.
#[allow(clippy::too_many_arguments)]
fn run_agg_dense(
    nodes: &[Node],
    agg: Agg,
    value: &AccSpec,
    guard: Option<&AccSpec>,
    out: &mut [f64],
    start_cell: usize,
    cells: usize,
    n: usize,
    d: usize,
    inner_cells: usize,
    digits: &mut [usize],
    inner_digits: &mut [usize],
) {
    if cells == 0 {
        return;
    }
    let q = inner_digits.len();
    let (guarded, g_node, g_outer, g_inner) = match guard {
        Some(gs) => (true, gs.node, &gs.outer_strides[..], &gs.inner_strides[..]),
        None => (false, value.node, &ZERO_STRIDES[..digits.len()], &ZERO_STRIDES[..q]),
    };
    let vdata = &nodes[value.node].data[..];
    let gdata = &nodes[g_node].data[..];
    decompose(start_cell, n, digits);
    let mut vbase = dot(digits, &value.outer_strides);
    let mut gbase = dot(digits, g_outer);
    for c in 0..cells {
        let cell = &mut out[c * d..(c + 1) * d];
        cell.fill(0.0);
        let mut count = 0usize;
        inner_digits.fill(0);
        let mut voff = vbase;
        let mut goff = gbase;
        for ic in 0..inner_cells {
            if !guarded || gdata[goff] != 0.0 {
                push_acc(agg, cell, &vdata[voff..voff + d], count);
                count += 1;
            }
            if ic + 1 < inner_cells {
                advance2(inner_digits, n, &value.inner_strides, &mut voff, g_inner, &mut goff);
            }
        }
        if agg == Agg::Mean && count > 0 {
            let cf = count as f64;
            for a in cell {
                *a /= cf;
            }
        }
        if c + 1 < cells {
            advance2(digits, n, &value.outer_strides, &mut vbase, g_outer, &mut gbase);
        }
    }
}

/// The CSR neighbour-list kernel for `agg_{y}(value | E(x, y))`: the
/// generalized edge-guard fast path — any number of free variables,
/// neighbour iteration in adjacency order, same accumulation
/// discipline as the dense kernel.
#[allow(clippy::too_many_arguments)]
fn run_agg_nbr(
    nodes: &[Node],
    g: &Graph,
    agg: Agg,
    value: &AccSpec,
    x_pos: usize,
    y_stride: usize,
    outgoing: bool,
    out: &mut [f64],
    start_cell: usize,
    cells: usize,
    n: usize,
    d: usize,
    digits: &mut [usize],
) {
    if cells == 0 {
        return;
    }
    let vdata = &nodes[value.node].data[..];
    let mut unused = 0usize;
    decompose(start_cell, n, digits);
    let mut vbase = dot(digits, &value.outer_strides);
    for c in 0..cells {
        let cell = &mut out[c * d..(c + 1) * d];
        let anchor = digits[x_pos] as Vertex;
        let nbrs = if outgoing { g.out_neighbors(anchor) } else { g.in_neighbors(anchor) };
        match agg {
            // Sum/Mean lower to the fused CSR gather: per-column folds
            // in adjacency order, bit-identical to the push_acc loop.
            Agg::Sum | Agg::Mean => {
                if d == 1 {
                    cell[0] = gather_sum_scalar(vdata, vbase, y_stride, nbrs);
                } else {
                    gather_sum_into(cell, vdata, vbase, y_stride, nbrs);
                }
                if agg == Agg::Mean && !nbrs.is_empty() {
                    let cf = nbrs.len() as f64;
                    for a in cell {
                        *a /= cf;
                    }
                }
            }
            Agg::Max | Agg::Min => {
                cell.fill(0.0);
                for (count, &w) in nbrs.iter().enumerate() {
                    let voff = vbase + w as usize * y_stride;
                    push_acc(agg, cell, &vdata[voff..voff + d], count);
                }
            }
        }
        if c + 1 < cells {
            advance2(
                digits,
                n,
                &value.outer_strides,
                &mut vbase,
                &ZERO_STRIDES[..digits.len()],
                &mut unused,
            );
        }
    }
}

/// The sparse product kernel: iterate the driver's entries, expand the
/// output digits the driver does not bind, gather the remaining
/// operands (dense gather or sparse binary search) into the same packed
/// input row as the dense `Apply` kernel, and emit the product entries.
/// Output coordinates are unique (driver coords are unique, the
/// expansion enumerates distinct completions), so the final sort needs
/// no dedup — and early-returns when the driver's digits lead the
/// output order.
#[allow(clippy::too_many_arguments)]
fn run_mul_sparse(
    nodes: &[Node],
    func: &Func,
    args: &[MulArg],
    driver: usize,
    driver_pos: &[usize],
    expand_pos: &[usize],
    sp_out: &mut CoordList,
    n: usize,
    input: &mut Vec<f64>,
    result: &mut Vec<f64>,
    digits: &mut [usize],
    ddigits: &mut [usize],
    join: &mut JoinScratch,
) {
    let dsp = &nodes[args[driver].node].sp;
    let combos = n.checked_pow(expand_pos.len() as u32).expect("table too large");
    for e in 0..dsp.len() {
        decompose(dsp.coords()[e], n, ddigits);
        let dval = dsp.value(e)[0];
        digits.fill(0);
        for (k, &pos) in driver_pos.iter().enumerate() {
            digits[pos] = ddigits[k];
        }
        for _ in 0..combos {
            let oc = digits.iter().fold(0, |acc, &dg| acc * n + dg);
            input.clear();
            for (ai, arg) in args.iter().enumerate() {
                if ai == driver {
                    input.push(dval);
                } else if arg.sparse {
                    input.push(nodes[arg.node].sp.probe1(dot(digits, &arg.strides)));
                } else {
                    let off = dot(digits, &arg.strides);
                    input.extend_from_slice(&nodes[arg.node].data[off..off + arg.dim]);
                }
            }
            func.apply(input, result);
            sp_out.push1(oc, result[0]);
            // Advance the expansion odometer (driver digits fixed).
            for (k, &pos) in expand_pos.iter().enumerate().rev() {
                digits[pos] += 1;
                if digits[pos] < n {
                    break;
                }
                digits[pos] = 0;
                debug_assert!(k > 0 || sp_out.len().is_multiple_of(combos));
            }
        }
    }
    sp_out.sort_entries(join);
}

/// Unguarded `Sum`/`Mean` over a sparse value binding every aggregated
/// variable: stream the entries, scattering each into its output cell.
/// Entry order restricted to one output cell is ascending over the
/// aggregated digits — exactly the dense kernel's inner-odometer fold
/// order — and skipping absent (`+0.0`) addends cannot change a sum
/// that starts at `+0.0`, so the result is bit-identical.
#[allow(clippy::too_many_arguments)]
fn run_agg_sparse_value(
    nodes: &[Node],
    agg: Agg,
    value: usize,
    keep_strides: &[usize],
    inner_cells: usize,
    out: &mut [f64],
    n: usize,
    d: usize,
    digits: &mut [usize],
) {
    out.fill(0.0);
    let sp = &nodes[value].sp;
    for (e, &c) in sp.coords().iter().enumerate() {
        decompose(c, n, digits);
        let oc = dot(digits, keep_strides);
        for (a, &v) in out[oc * d..(oc + 1) * d].iter_mut().zip(sp.value(e)) {
            *a += v;
        }
    }
    if agg == Agg::Mean {
        // Unguarded Mean divides by the full inner-cell count.
        let cf = inner_cells as f64;
        for a in out {
            *a /= cf;
        }
    }
}

/// Guarded aggregation over a sparse scalar guard binding every
/// aggregated variable: per output cell, a binary-searched run of
/// re-keyed guard entries replaces the dense inner odometer. The run
/// ascends in aggregated-digit order, and stored zeros (a sparse
/// product may keep explicit zeros) are skipped exactly like the dense
/// kernel's `!= 0.0` test — same passing cells, same fold order.
#[allow(clippy::too_many_arguments)]
fn run_agg_sparse_guard(
    nodes: &[Node],
    agg: Agg,
    value: &AccSpec,
    guard: usize,
    gkeys: &[(usize, u32)],
    gkey_outer: &[usize],
    over_pow: usize,
    out: &mut [f64],
    n: usize,
    d: usize,
    digits: &mut [usize],
    inner_digits: &mut [usize],
) {
    let cells = out.len() / d.max(1);
    if cells == 0 {
        return;
    }
    let vdata = &nodes[value.node].data[..];
    let gsp = &nodes[guard].sp;
    digits.fill(0);
    let mut vbase = 0usize;
    let mut gbase = 0usize;
    for c in 0..cells {
        let cell = &mut out[c * d..(c + 1) * d];
        cell.fill(0.0);
        let lo = gbase * over_pow;
        let hi = lo + over_pow;
        let start = gkeys.partition_point(|&(k, _)| k < lo);
        let mut count = 0usize;
        for &(k, idx) in &gkeys[start..] {
            if k >= hi {
                break;
            }
            if gsp.value(idx as usize)[0] != 0.0 {
                decompose(k - lo, n, inner_digits);
                let voff = vbase + dot(inner_digits, &value.inner_strides);
                push_acc(agg, cell, &vdata[voff..voff + d], count);
                count += 1;
            }
        }
        if agg == Agg::Mean && count > 0 {
            let cf = count as f64;
            for a in cell {
                *a /= cf;
            }
        }
        if c + 1 < cells {
            advance2(digits, n, &value.outer_strides, &mut vbase, gkey_outer, &mut gbase);
        }
    }
}

/// The FAQ-style elimination kernel (`Sum` over a product of 0/1
/// indicator factors): copy each factor's coordinate list into the
/// scratch arena, then for each variable of the planned order join all
/// factors containing it and contract it out with [`contract_sum`];
/// finally join the survivors and scatter into the dense output,
/// multiplied by `n^free_over` for aggregated variables no factor
/// constrains. All arithmetic is on integers below 2^53, so the
/// reassociated sums are exact — bit-identical to the dense sweep.
#[allow(clippy::too_many_arguments)]
fn run_agg_elim(
    nodes: &[Node],
    factors: &[usize],
    factor_vars: &[Vec<Var>],
    order: &[Var],
    free_over: u32,
    out: &mut [f64],
    n: usize,
    s: &mut ExecScratch,
) {
    let k = factors.len();
    while s.arena.len() < k {
        s.arena.push(CoordList::default());
        s.avars.push(Vec::new());
    }
    s.alive.clear();
    s.alive.resize(k, true);
    for (slot, (&fi, fv)) in factors.iter().zip(factor_vars).enumerate() {
        s.arena[slot].copy_from_list(&nodes[fi].sp);
        s.avars[slot].clear();
        s.avars[slot].extend_from_slice(fv);
    }
    for &v in order {
        s.with_v.clear();
        for i in 0..k {
            if s.alive[i] && s.avars[i].contains(&v) {
                s.with_v.push(i);
            }
        }
        // Variables in no live factor are the `free_over` multiplier.
        let Some(&first) = s.with_v.first() else { continue };
        std::mem::swap(&mut s.tmp, &mut s.arena[first]);
        std::mem::swap(&mut s.tmp_vars, &mut s.avars[first]);
        for w in 1..s.with_v.len() {
            let j = s.with_v[w];
            join_multiply(
                &s.tmp,
                &s.tmp_vars,
                &s.arena[j],
                &s.avars[j],
                n,
                &mut s.join,
                &mut s.tmp2,
                &mut s.tmp2_vars,
            );
            std::mem::swap(&mut s.tmp, &mut s.tmp2);
            std::mem::swap(&mut s.tmp_vars, &mut s.tmp2_vars);
            s.alive[j] = false;
        }
        contract_sum(&s.tmp, &s.tmp_vars, v, n, &mut s.join, &mut s.arena[first]);
        s.avars[first].clear();
        let tv = std::mem::take(&mut s.tmp_vars);
        s.avars[first].extend(tv.iter().copied().filter(|&u| u != v));
        s.tmp_vars = tv;
    }
    // Join the surviving (fully contracted) factors.
    let mut acc: Option<usize> = None;
    for i in 0..k {
        if !s.alive[i] {
            continue;
        }
        match acc {
            None => acc = Some(i),
            Some(a) => {
                join_multiply(
                    &s.arena[a],
                    &s.avars[a],
                    &s.arena[i],
                    &s.avars[i],
                    n,
                    &mut s.join,
                    &mut s.tmp,
                    &mut s.tmp_vars,
                );
                std::mem::swap(&mut s.arena[a], &mut s.tmp);
                std::mem::swap(&mut s.avars[a], &mut s.tmp_vars);
                s.alive[i] = false;
            }
        }
    }
    out.fill(0.0);
    let mult = (n as f64).powi(free_over as i32);
    if let Some(a) = acc {
        let fin = &s.arena[a];
        debug_assert!(fin.coords().iter().all(|&c| c < out.len()));
        for (e, &c) in fin.coords().iter().enumerate() {
            out[c] = fin.value(e)[0] * mult;
        }
    }
}

/// The worst-case-optimal join kernel wrapper ([`Kind::JoinWco`]):
/// copy each factor's coordinate list into the scratch arena (the
/// kernel re-keys its trie views in place), run
/// [`crate::sparse::join_multiway`] over the planned order, then scale
/// every emitted (integer) count by `n^free_over` for aggregated
/// variables no factor constrains — exact, like `AggElim`'s
/// multiplier. Arena and join-scratch capacities persist across
/// evaluations, so the warmed path allocates nothing.
#[allow(clippy::too_many_arguments)]
fn run_join_wco(
    nodes: &[Node],
    factors: &[usize],
    factor_vars: &[Vec<Var>],
    order: &[Var],
    n_free: usize,
    free_over: u32,
    sp_out: &mut CoordList,
    n: usize,
    s: &mut ExecScratch,
) {
    let k = factors.len();
    while s.arena.len() < k {
        s.arena.push(CoordList::default());
        s.avars.push(Vec::new());
    }
    for (slot, &fi) in factors.iter().enumerate() {
        s.arena[slot].copy_from_list(&nodes[fi].sp);
    }
    let seeks =
        join_multiway(&mut s.arena[..k], factor_vars, order, n_free, n, &mut s.join, sp_out);
    if free_over > 0 {
        let mult = (n as f64).powi(free_over as i32);
        for v in sp_out.values_mut() {
            *v *= mult;
        }
    }
    WCO_JOINS.fetch_add(1, Ordering::Relaxed);
    WCO_SEEKS.fetch_add(seeks, Ordering::Relaxed);
    OBS_WCO_JOINS.incr();
    OBS_WCO_SEEKS.add(seeks);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::build::*;
    use crate::eval::oracle::{oracle_eval, oracle_eval_with};
    use crate::random_expr::{random_gel_graph, RandomExprConfig};
    use gel_graph::families::cycle;
    use gel_graph::GraphBuilder;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A random *directed* labelled graph (arc (u,v) present does not
    /// imply (v,u)), so the engine's in/out-neighbour handling and the
    /// reversed-guard fast path both get exercised.
    fn random_graph(n: usize, label_dim: usize, rng: &mut StdRng) -> Graph {
        let mut b = GraphBuilder::new(n);
        for u in 0..n as Vertex {
            for v in 0..n as Vertex {
                if u != v && rng.gen_bool(0.3) {
                    b.add_arc(u, v);
                }
            }
        }
        let labels: Vec<f64> = (0..n * label_dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
        b.build().with_labels(labels, label_dim)
    }

    fn assert_engine_matches_oracle(e: &Expr, g: &Graph) {
        for fast in [true, false] {
            let opts = EvalOptions { guard_fast_path: fast, ..EvalOptions::default() };
            let want = oracle_eval_with(e, g, opts);
            let mut eng = EvalEngine::with_options(opts);
            assert_eq!(eng.eval(e, g), &want, "engine diverged (fast_path={fast}) on {e}");
            // A second call replays the cached plan; still identical.
            assert_eq!(eng.eval(e, g), &want, "cached plan diverged (fast_path={fast}) on {e}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        // Random GEL_k expressions (k ∈ {2,3} ⇒ intermediate tables of
        // arity 0–3), all four aggregators, labelled directed graphs:
        // the engine must reproduce the oracle's tables bit-for-bit,
        // with the fast path both on and off.
        #[test]
        fn engine_matches_oracle_on_random_gel(seed in 0u64..1_000_000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 3 + (seed % 5) as usize;
            let label_dim = 1 + (seed % 2) as usize;
            let g = random_graph(n, label_dim, &mut rng);
            let cfg = RandomExprConfig {
                label_dim,
                max_depth: 3,
                max_dim: 3,
                aggregators: vec![Agg::Sum, Agg::Mean, Agg::Max, Agg::Min],
            };
            let k = 2 + (seed % 2) as usize;
            let e = random_gel_graph(&cfg, k, &mut rng);
            for fast in [true, false] {
                let opts = EvalOptions { guard_fast_path: fast, ..EvalOptions::default() };
                let want = oracle_eval_with(&e, &g, opts);
                let mut eng = EvalEngine::with_options(opts);
                prop_assert_eq!(eng.eval(&e, &g), &want);
                prop_assert_eq!(eng.eval(&e, &g), &want);
            }
        }
    }

    #[test]
    fn engine_matches_oracle_on_handcrafted_shapes() {
        let labels: Vec<f64> = (0..14).map(|i| f64::from(i) * 0.5 - 3.0).collect();
        let g = cycle(7).with_labels(labels, 2);
        let exprs = vec![
            eq(1, 2),
            ne(1, 2),
            lab_vec(1, 2),
            hash(7, lab_vec(1, 2)),
            constant(vec![2.0, -1.0, 0.5]),
            agg_over(Agg::Min, vec![2], mul2(lab(0, 1), lab(1, 2)), Some(ne(1, 2))),
            agg_over(Agg::Max, vec![1, 2], add2(lab(0, 1), lab(0, 2)), None),
            agg_over(Agg::Sum, vec![2], lab_vec(1, 2), Some(eq(1, 2))),
            nbr_agg(Agg::Min, 1, 2, lab_vec(2, 2)),
            // Reversed guard: E(y, x) anchors the in-neighbour walk.
            agg_over(Agg::Mean, vec![2], lab(0, 2), Some(edge(2, 1))),
            global_agg(Agg::Mean, 1, nbr_agg(Agg::Sum, 1, 2, mul2(lab(0, 1), lab(0, 2)))),
            // Aggregated variable absent from the value: n copies of a cell.
            agg_over(Agg::Sum, vec![2], lab(1, 1), None),
        ];
        for e in exprs {
            assert_engine_matches_oracle(&e, &g);
        }
    }

    #[test]
    fn engine_matches_oracle_on_directed_random_graphs() {
        let mut rng = StdRng::seed_from_u64(0xD15EA5E);
        let g = random_graph(8, 1, &mut rng);
        let exprs = vec![
            nbr_agg(Agg::Sum, 1, 2, lab(0, 2)),
            agg_over(Agg::Sum, vec![2], lab(0, 2), Some(edge(2, 1))),
            mul2(nbr_agg(Agg::Max, 1, 2, lab(0, 2)), nbr_agg(Agg::Min, 1, 2, lab(0, 2))),
        ];
        for e in exprs {
            assert_engine_matches_oracle(&e, &g);
        }
    }

    /// Exercises the parallel outer-assignment chunking of all three
    /// heavy kernels (Apply, dense Aggregate, neighbour Aggregate) on
    /// shapes big enough to cross [`PAR_MIN_WORK`], asserting
    /// bit-identical tables at 1 and 4 threads against the serial
    /// oracle.
    #[test]
    fn parallel_kernels_are_bit_identical() {
        let n = 40;
        let mut rng = StdRng::seed_from_u64(42);
        let g = random_graph(n, 1, &mut rng);
        let tri = apply(Func::Mul { arity: 3, dim: 1 }, vec![edge(1, 2), edge(2, 3), edge(1, 3)]);
        let exprs = vec![
            // Apply over n³ cells + dense aggregation over x3.
            agg_over(Agg::Sum, vec![3], tri, None),
            // Neighbour kernel with a 2-variable output table.
            nbr_agg(Agg::Sum, 1, 2, mul2(lab(0, 2), lab(0, 3))),
            // Mean keeps the count/divide discipline under chunking.
            agg_over(Agg::Mean, vec![3], add2(lab(0, 1), mul2(lab(0, 2), lab(0, 3))), None),
        ];
        for e in &exprs {
            let want = oracle_eval(e, &g);
            for threads in [1, 4] {
                rayon::set_num_threads(threads);
                let mut eng = EvalEngine::new();
                assert_eq!(eng.eval(e, &g), &want, "thread count {threads} changed {e}");
                rayon::set_num_threads(0);
            }
        }
    }

    #[test]
    fn plan_dedups_shared_subtrees() {
        let g = cycle(5);
        let deg = nbr_agg(Agg::Sum, 1, 2, constant(vec![1.0]));
        let e = mul2(deg.clone(), deg);
        let mut eng = EvalEngine::new();
        eng.eval(&e, &g);
        // const → AggNbr (guard folded into the kernel) → mul: the
        // duplicated degree subtree lowers to a single shared node.
        assert_eq!(eng.plan_nodes(), 3);
    }

    #[test]
    fn owned_results_and_plan_reuse() {
        let g = cycle(6);
        let e = global_agg(Agg::Sum, 1, nbr_agg(Agg::Sum, 1, 2, constant(vec![1.0])));
        let mut eng = EvalEngine::new();
        let a = eng.eval_owned(&e, &g);
        let b = eng.eval_owned(&e, &g);
        assert_eq!(a, b);
        assert_eq!(a.value(), &[12.0]);
        // A different graph shape relowers the plan transparently.
        assert_eq!(eng.eval(&e, &cycle(7)).value(), &[14.0]);
        // And switching back works too (slabs recycle through the pool).
        assert_eq!(eng.eval(&e, &g).value(), &[12.0]);
    }

    /// Forced-sparse options: every representable node goes through the
    /// coordinate-list kernels regardless of size.
    fn forced_sparse(fast: bool) -> EvalOptions {
        EvalOptions {
            guard_fast_path: fast,
            sparse: true,
            sparse_min_cells: 0,
            ..EvalOptions::default()
        }
    }

    /// Forced-sparse evaluation must be *equal* to both the oracle and
    /// the dense engine (`assert_eq` tolerates the documented `±0.0`
    /// divergence of elided cells), twice (cached plan).
    fn assert_sparse_matches_dense(e: &Expr, g: &Graph, fast: bool) {
        let opts = forced_sparse(fast);
        let want = oracle_eval_with(e, g, opts);
        let mut dense = EvalEngine::with_options(EvalOptions {
            guard_fast_path: fast,
            sparse: false,
            ..EvalOptions::default()
        });
        assert_eq!(dense.eval(e, g), &want, "dense engine diverged on {e}");
        let mut eng = EvalEngine::with_options(opts);
        assert_eq!(eng.eval(e, g), &want, "sparse engine diverged on {e}");
        assert_eq!(eng.eval(e, g), &want, "cached sparse plan diverged on {e}");
    }

    /// Handcrafted shapes hitting each sparse kernel: the FAQ
    /// elimination pass (pure indicator sum-products, with and without
    /// free aggregated variables, equality atoms, and indicator
    /// guards), the sparse product (`MulSparse`), the streaming
    /// unguarded aggregation (`AggSparseValue`), and the run-probed
    /// guarded aggregation (`AggSparseGuard`).
    #[test]
    fn sparse_kernels_match_dense_on_handcrafted_shapes() {
        let mut rng = StdRng::seed_from_u64(0x5EED);
        let g = random_graph(9, 2, &mut rng);
        let tri = apply(Func::Mul { arity: 3, dim: 1 }, vec![edge(1, 2), edge(2, 3), edge(1, 3)]);
        let exprs = vec![
            // AggElim: triangles at a vertex, global triangle count.
            agg_over(Agg::Sum, vec![2, 3], tri.clone(), None),
            agg_over(Agg::Sum, vec![1, 2, 3], tri, None),
            // AggElim with an equality atom collapsing two variables.
            agg_over(
                Agg::Sum,
                vec![2, 3],
                apply(Func::Mul { arity: 3, dim: 1 }, vec![edge(1, 2), eq(2, 3), edge(3, 1)]),
                None,
            ),
            // AggElim with the guard as an extra indicator factor
            // (mutual-edge count at x1).
            agg_over(Agg::Sum, vec![2], edge(1, 2), Some(edge(2, 1))),
            // AggElim with a free aggregated variable (×n multiplier).
            agg_over(Agg::Sum, vec![2, 3], edge(1, 2), None),
            // MulSparse (edge × dense label) then AggSparseValue.
            agg_over(Agg::Sum, vec![2], mul2(edge(1, 2), lab(0, 2)), None),
            agg_over(Agg::Mean, vec![2], mul2(edge(1, 2), lab(1, 2)), None),
            // MulSparse products feeding Max force the dense fallback.
            agg_over(Agg::Max, vec![2], mul2(edge(1, 2), lab(0, 2)), None),
            // AggSparseGuard via a sparse (product) guard binding x2 —
            // not an edge atom, so the AggNbr fast path stays out.
            agg_over(Agg::Min, vec![2], lab(0, 2), Some(mul2(edge(1, 2), edge(2, 1)))),
            agg_over(Agg::Mean, vec![2], lab_vec(2, 2), Some(mul2(edge(1, 2), edge(2, 1)))),
        ];
        for e in &exprs {
            for fast in [true, false] {
                assert_sparse_matches_dense(e, &g, fast);
            }
        }
        // Single-edge guard with the fast path ablated: AggSparseGuard
        // carries the MPNN shape.
        let mpnn = agg_over(Agg::Sum, vec![2], lab(0, 2), Some(edge(1, 2)));
        assert_sparse_matches_dense(&mpnn, &g, false);
    }

    /// The elimination pass replaces the Apply + dense-aggregate pair
    /// with a single plan node over the (3) edge factors — a structural
    /// probe that the `AggElim` gate actually fires.
    #[test]
    fn elimination_collapses_sum_product_plans() {
        let g = cycle(7);
        let tri = apply(Func::Mul { arity: 3, dim: 1 }, vec![edge(1, 2), edge(2, 3), edge(1, 3)]);
        let e = agg_over(Agg::Sum, vec![1, 2, 3], tri, None);
        let mut eng = EvalEngine::with_options(forced_sparse(true));
        // 6 · #triangles(C7) = 0.
        assert_eq!(eng.eval(&e, &g).value(), &[0.0]);
        // 3 edge atoms + 1 AggElim node; the dense plan needs 5.
        assert_eq!(eng.plan_nodes(), 4);
        let mut dense =
            EvalEngine::with_options(EvalOptions { sparse: false, ..EvalOptions::default() });
        dense.eval(&e, &g);
        assert_eq!(dense.plan_nodes(), 5);
    }

    /// The sparse kernels are serial, so thread count must not change a
    /// single bit, mirroring `parallel_kernels_are_bit_identical`.
    #[test]
    fn sparse_paths_bit_identical_across_threads() {
        let n = 40;
        let mut rng = StdRng::seed_from_u64(1729);
        let g = random_graph(n, 1, &mut rng);
        let tri = apply(Func::Mul { arity: 3, dim: 1 }, vec![edge(1, 2), edge(2, 3), edge(1, 3)]);
        let exprs = vec![
            agg_over(Agg::Sum, vec![2, 3], tri, None),
            agg_over(Agg::Sum, vec![2], mul2(edge(1, 2), lab(0, 2)), None),
            agg_over(Agg::Min, vec![2], lab(0, 2), Some(mul2(edge(1, 2), edge(2, 1)))),
        ];
        for e in &exprs {
            let want = oracle_eval(e, &g);
            for threads in [1, 4] {
                rayon::set_num_threads(threads);
                let mut eng = EvalEngine::with_options(forced_sparse(true));
                assert_eq!(eng.eval(e, &g), &want, "thread count {threads} changed {e}");
                rayon::set_num_threads(0);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        // Forced-sparse evaluation of random GEL_k expressions equals
        // the oracle — the whole-plan version of the kernel-level
        // properties in `crate::sparse` (`assert_eq`, so the documented
        // `±0.0` elision caveat is tolerated; see DESIGN.md §7).
        #[test]
        fn sparse_engine_matches_oracle_on_random_gel(seed in 0u64..1_000_000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 3 + (seed % 5) as usize;
            let label_dim = 1 + (seed % 2) as usize;
            let g = random_graph(n, label_dim, &mut rng);
            let cfg = RandomExprConfig {
                label_dim,
                max_depth: 3,
                max_dim: 3,
                aggregators: vec![Agg::Sum, Agg::Mean, Agg::Max, Agg::Min],
            };
            let k = 2 + (seed % 2) as usize;
            let e = random_gel_graph(&cfg, k, &mut rng);
            for fast in [true, false] {
                let opts = forced_sparse(fast);
                let want = oracle_eval_with(&e, &g, opts);
                let mut eng = EvalEngine::with_options(opts);
                prop_assert_eq!(eng.eval(&e, &g), &want);
                prop_assert_eq!(eng.eval(&e, &g), &want);
            }
        }
    }

    /// The cyclic probe family of the wco path: k-cycles, cliques, and
    /// chorded cycles as indicator products, aggregated over a chosen
    /// variable subset.
    fn cyclic_probe(atoms: Vec<Expr>, over: Vec<Var>) -> Expr {
        let arity = atoms.len();
        agg_over(Agg::Sum, over, apply(Func::Mul { arity, dim: 1 }, atoms), None)
    }

    /// Cyclic sum-products route through [`Kind::JoinWco`] (counter
    /// delta ≥ 1 — other tests may run concurrently) while keeping the
    /// same compact plan shape as the `AggElim` path, and the `wco`
    /// ablation restores the binary-join plan bit-identically.
    #[test]
    fn wco_gate_fires_on_cyclic_shapes() {
        let mut rng = StdRng::seed_from_u64(0xC4C4);
        let g = random_graph(10, 1, &mut rng);
        let c4 =
            cyclic_probe(vec![edge(1, 2), edge(2, 3), edge(3, 4), edge(1, 4)], vec![1, 2, 3, 4]);
        let want = oracle_eval(&c4, &g);
        let before = eval_wco_joins();
        let mut eng = EvalEngine::with_options(forced_sparse(true));
        assert_eq!(eng.eval(&c4, &g), &want);
        assert!(eval_wco_joins() > before, "cyclic probe did not take the wco path");
        // 4 edge atoms + 1 JoinWco node — same shape as the AggElim plan.
        assert_eq!(eng.plan_nodes(), 5);
        let mut binary =
            EvalEngine::with_options(EvalOptions { wco: false, ..forced_sparse(true) });
        assert_eq!(binary.eval(&c4, &g), &want, "wco ablation diverged");
        assert_eq!(binary.plan_nodes(), 5);
        // Acyclic shapes stay on the elimination path.
        let path3 = cyclic_probe(vec![edge(1, 2), edge(2, 3)], vec![2, 3]);
        let before = eval_wco_joins();
        let mut eng = EvalEngine::with_options(forced_sparse(true));
        let seen = eng.eval(&path3, &g).data().to_vec();
        assert_eq!(eval_wco_joins(), before, "acyclic probe must stay on AggElim");
        assert_eq!(seen, oracle_eval(&path3, &g).data());
    }

    /// The wco engine, the binary merge-join engine (`wco: false`) and
    /// the dense oracle agree bit-for-bit on cycles, cliques, chorded
    /// cycles and free-variable variants, at 1 and 4 threads.
    #[test]
    fn wco_matches_binary_join_and_oracle_on_probe_family() {
        let mut rng = StdRng::seed_from_u64(0xAC3D);
        let g = random_graph(12, 1, &mut rng);
        let probes = vec![
            // Triangle count (closed) and per-vertex triangle counts.
            cyclic_probe(vec![edge(1, 2), edge(2, 3), edge(1, 3)], vec![1, 2, 3]),
            cyclic_probe(vec![edge(1, 2), edge(2, 3), edge(1, 3)], vec![2, 3]),
            // 4-cycle, closed and with one / two free variables.
            cyclic_probe(vec![edge(1, 2), edge(2, 3), edge(3, 4), edge(1, 4)], vec![1, 2, 3, 4]),
            cyclic_probe(vec![edge(1, 2), edge(2, 3), edge(3, 4), edge(1, 4)], vec![2, 3, 4]),
            cyclic_probe(vec![edge(1, 2), edge(2, 3), edge(3, 4), edge(1, 4)], vec![2, 4]),
            // Chorded 4-cycle and the full 4-clique.
            cyclic_probe(
                vec![edge(1, 2), edge(2, 3), edge(3, 4), edge(1, 4), edge(1, 3)],
                vec![1, 2, 3, 4],
            ),
            cyclic_probe(
                vec![edge(1, 2), edge(2, 3), edge(3, 4), edge(1, 4), edge(1, 3), edge(2, 4)],
                vec![1, 2, 3, 4],
            ),
            // Cyclic core with a free aggregated variable (×n) and an
            // equality atom collapsing one cycle vertex.
            cyclic_probe(vec![edge(1, 2), edge(2, 3), edge(1, 3)], vec![1, 2, 3, 5]),
            cyclic_probe(vec![edge(1, 2), edge(2, 3), edge(3, 4), eq(1, 4)], vec![1, 2, 3, 4]),
        ];
        for e in &probes {
            let want = oracle_eval(e, &g);
            for threads in [1, 4] {
                rayon::set_num_threads(threads);
                let mut wco = EvalEngine::with_options(forced_sparse(true));
                assert_eq!(wco.eval(e, &g), &want, "wco diverged at {threads} threads on {e}");
                assert_eq!(wco.eval(e, &g), &want, "cached wco plan diverged on {e}");
                let mut binary =
                    EvalEngine::with_options(EvalOptions { wco: false, ..forced_sparse(true) });
                assert_eq!(binary.eval(e, &g), &want, "binary join diverged on {e}");
                rayon::set_num_threads(0);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        // Random cyclic GEL_{2,3} sum-products: cycle length 3–5 with
        // random arc directions, optional chord, optional pendant edge,
        // and a random (non-empty) aggregated subset. The wco engine,
        // the binary merge-join engine and the dense oracle must agree
        // bit-for-bit, serially and at 4 threads (the sparse kernels
        // are serial, so thread count must not change a single bit).
        #[test]
        fn wco_matches_binary_join_on_random_cyclic_gel(seed in 0u64..1_000_000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 4 + (seed % 4) as usize;
            let g = random_graph(n, 1, &mut rng);
            let len = 3 + (seed % 3) as u8;
            let mut atoms = Vec::new();
            for i in 1..=len {
                let j = i % len + 1;
                let (a, b) = if (seed >> i) & 1 == 0 { (i, j) } else { (j, i) };
                atoms.push(edge(a, b));
            }
            let mut max_var = len;
            if len >= 4 && (seed >> 11) & 1 == 1 {
                atoms.push(edge(1, 3)); // chord
            }
            if (seed >> 12) & 1 == 1 {
                max_var = len + 1;
                atoms.push(edge(len, max_var)); // pendant
            }
            let mut over: Vec<Var> =
                (1..=max_var).filter(|v| (seed >> (16 + v)) & 1 == 1).collect();
            if over.is_empty() {
                over.push(1 + (seed % max_var as u64) as Var);
            }
            let e = cyclic_probe(atoms, over);
            let want = oracle_eval(&e, &g);
            for threads in [1, 4] {
                rayon::set_num_threads(threads);
                let mut wco = EvalEngine::with_options(forced_sparse(true));
                prop_assert_eq!(wco.eval(&e, &g), &want, "wco diverged on {}", e);
                let mut binary =
                    EvalEngine::with_options(EvalOptions { wco: false, ..forced_sparse(true) });
                prop_assert_eq!(binary.eval(&e, &g), &want, "binary join diverged on {}", e);
                rayon::set_num_threads(0);
            }
        }
    }

    /// Sparse output: with `sparse_output` on, a sparse root skips the
    /// final densify — the returned table is sparse, equal (as a
    /// function) to the dense result, replays from the cached plan, and
    /// round-trips through `eval_owned`.
    #[test]
    fn sparse_output_root_skips_densify() {
        let mut rng = StdRng::seed_from_u64(0x0B7);
        let g = random_graph(12, 1, &mut rng);
        // Per-(x1,x4) count of paths x1→x2→x3→x4 closing a 4-cycle:
        // a cyclic query with a 2-variable output table.
        let e = cyclic_probe(vec![edge(1, 2), edge(2, 3), edge(3, 4), edge(1, 4)], vec![2, 3]);
        let opts = EvalOptions { sparse_output: true, ..forced_sparse(true) };
        let want = oracle_eval(&e, &g);
        let mut eng = EvalEngine::with_options(opts);
        let t = eng.eval(&e, &g);
        assert!(t.is_sparse(), "root should stay sparse under sparse_output");
        assert!(t.nnz() <= t.num_cells());
        assert!(t.approx_eq(&want, 0.0), "sparse output diverged from the oracle");
        assert_eq!(t.to_dense(), want, "densified sparse output must be bit-identical");
        // Cached replay keeps the sparse representation and the values.
        let t2 = eng.eval(&e, &g);
        assert!(t2.is_sparse());
        assert!(t2.approx_eq(&want, 0.0));
        // eval_owned moves the sparse table out; the next borrowed call
        // still works (fresh buffers).
        let owned = eng.eval_owned(&e, &g);
        assert!(owned.is_sparse());
        assert_eq!(owned.to_dense(), want);
        assert!(eng.eval(&e, &g).approx_eq(&want, 0.0));
        // A dense root (defaults) is unaffected by the flag being off.
        let mut dense_eng = EvalEngine::with_options(forced_sparse(true));
        assert!(!dense_eng.eval(&e, &g).is_sparse());
    }

    /// `try_eval_capped` admits plans whose slabs all stay sparse and
    /// rejects — before allocating — plans needing a dense slab over
    /// the cap; the error names the offending length.
    #[test]
    fn try_eval_capped_gates_dense_slabs() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = random_graph(16, 1, &mut rng);
        let e = cyclic_probe(vec![edge(1, 2), edge(2, 3), edge(3, 4), edge(1, 4)], vec![3, 4]);
        let sparse_opts = EvalOptions { sparse_output: true, ..forced_sparse(true) };
        let mut eng = EvalEngine::with_options(sparse_opts);
        // All nodes sparse (atoms + JoinWco root): a cap far below the
        // n² output admits the plan.
        let want = oracle_eval(&e, &g);
        let t = eng.try_eval_capped(&e, &g, 64).expect("fully sparse plan fits any cap");
        assert!(t.is_sparse());
        assert!(t.approx_eq(&want, 0.0));
        // Cached-plan revalidation: a cap of 0 still admits (no dense
        // slabs), and the dense engine is rejected up front.
        assert!(eng.try_eval_capped(&e, &g, 0).is_ok());
        let mut dense_eng =
            EvalEngine::with_options(EvalOptions { sparse: false, ..EvalOptions::default() });
        let err = dense_eng.try_eval_capped(&e, &g, 64).unwrap_err();
        assert!(err.len > 64, "error must carry the offending slab length");
        // The engine recovers: an uncapped call evaluates normally.
        assert_eq!(dense_eng.eval(&e, &g), &want);
    }

    /// The warmed wco + sparse-output path performs zero pool misses:
    /// the slab-alloc counter must stay flat across repeated calls on
    /// a cached plan.
    #[test]
    fn wco_sparse_output_steady_state_allocs_zero() {
        let mut rng = StdRng::seed_from_u64(99);
        let g = random_graph(14, 1, &mut rng);
        let e = cyclic_probe(vec![edge(1, 2), edge(2, 3), edge(3, 4), edge(1, 4)], vec![2, 3]);
        let opts = EvalOptions { sparse_output: true, ..forced_sparse(true) };
        let mut eng = EvalEngine::with_options(opts);
        for _ in 0..3 {
            eng.eval(&e, &g); // warm the plan, buffers and scratch
        }
        let before = eval_slab_allocs();
        for _ in 0..10 {
            eng.eval(&e, &g);
        }
        assert_eq!(eval_slab_allocs(), before, "warmed wco/sparse-output path allocated");
    }
}
