//! Compiled evaluation of `GEL(Ω,Θ)` expressions: lowering to a flat
//! plan of stride-addressed slab kernels.
//!
//! The original evaluator (kept as the test oracle in
//! `eval::oracle`) walked the expression tree per *cell*: every table
//! entry re-derived its flat index through [`EmbeddingTable::cell_env`]
//! and every shared subtree went through an `Rc<RefCell<HashMap>>`
//! memo. [`EvalEngine`] instead *compiles* the expression once:
//!
//! * **Plan lowering.** The tree is flattened into a DAG of plan
//!   nodes in children-first order, deduplicated by
//!   [`Expr::structural_hash`] — the same key the old memo used, so
//!   the architecture compilers' massive subtree sharing collapses
//!   identically. Executing the plan is a single in-order sweep.
//! * **Stride layout.** Each node owns a contiguous `f64` slab in the
//!   row-major layout of [`EmbeddingTable`] (variables ascending, last
//!   variable fastest). For every kernel input, the lowering
//!   precomputes one stride per *output* odometer digit — the flat
//!   offset is maintained incrementally as the odometer advances, so
//!   the hot loops never touch a hash map or recompute `Σ vⱼ·n^…`.
//! * **Contraction order.** Dense aggregation streams the innermost
//!   aggregated axis contiguously and accumulates straight into the
//!   output cell, in exactly the serial element order of the oracle
//!   (`Sum`/`Mean` add in inner-odometer order, `Max`/`Min` copy-first
//!   then fold), so results are bit-identical, not just close. The
//!   MPNN edge-guard fast path survives compilation as the
//!   [`Kind::AggNbr`] kernel: CSR neighbour iteration for any number
//!   of free variables, still gated by the DESIGN.md §6
//!   `guard_fast_path` ablation flag.
//! * **Scratch reuse.** Slabs come from a best-fit pool owned by the
//!   engine; re-evaluating the same expression shape (E9 probes each
//!   random expression on both graphs of a pair) hits the cached plan
//!   and touches no allocator at all. Pool misses are tracked by the
//!   always-on [`eval_slab_allocs`] counter and mirrored to the
//!   `eval.slab.allocs` obs counter.
//!
//! Outer-assignment loops of `Apply`/`Aggregate` parallelize over
//! contiguous output-cell ranges (`rayon::par_parts_mut`) once a node
//! exceeds [`PAR_MIN_WORK`]; each range replays the identical serial
//! per-cell order, so tables are bit-identical at any thread count —
//! the same discipline as the matmul and WL-renaming kernels.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use gel_graph::{Graph, Vertex};

use crate::ast::{CmpOp, Expr};
use crate::eval::EvalOptions;
use crate::func::{Agg, Func};
use crate::table::{EmbeddingTable, Var};

/// Tracked slab-pool misses since process start. Steady-state
/// evaluations of a cached plan perform none: the CI smoke gate
/// (`gel-bench --bench eval -- --smoke`) asserts the counter stays
/// flat across repeated calls. Always on (independent of the `obs`
/// feature) and monotone.
pub fn eval_slab_allocs() -> u64 {
    SLAB_ALLOCS.load(Ordering::Relaxed)
}

static SLAB_ALLOCS: AtomicU64 = AtomicU64::new(0);
static OBS_SLAB_ALLOCS: gel_obs::Counter = gel_obs::Counter::new("eval.slab.allocs");
static OBS_CALLS: gel_obs::Counter = gel_obs::Counter::new("eval.calls");
static OBS_PLAN_BUILDS: gel_obs::Counter = gel_obs::Counter::new("eval.plan.builds");
static OBS_PLAN_NODES: gel_obs::Counter = gel_obs::Counter::new("eval.plan.nodes");

fn note_slab_alloc(len: usize) {
    if len > 0 {
        SLAB_ALLOCS.fetch_add(1, Ordering::Relaxed);
        OBS_SLAB_ALLOCS.incr();
    }
}

/// Minimum kernel work (output elements × inner iterations) before an
/// outer-assignment loop is split across rayon threads; below it the
/// dispatch overhead dominates.
const PAR_MIN_WORK: usize = 1 << 14;

/// Zero strides for the guard-less aggregation path (a digit may never
/// index past 255 distinct `u8` variables).
static ZERO_STRIDES: [usize; 256] = [0; 256];

/// Best-fit recycler for node slabs: `take` prefers the smallest
/// pooled buffer whose capacity fits, so repeated plans of the same
/// shapes reach a zero-allocation steady state.
#[derive(Default)]
struct SlabPool {
    slabs: Vec<Vec<f64>>,
}

impl SlabPool {
    fn take(&mut self, len: usize) -> Vec<f64> {
        let mut best: Option<(usize, usize)> = None;
        for (i, s) in self.slabs.iter().enumerate() {
            let c = s.capacity();
            let tighter = match best {
                Some((_, bc)) => c < bc,
                None => true,
            };
            if c >= len && tighter {
                best = Some((i, c));
            }
        }
        let mut s = match best {
            Some((i, _)) => self.slabs.swap_remove(i),
            None => {
                note_slab_alloc(len);
                Vec::with_capacity(len)
            }
        };
        s.clear();
        s.resize(len, 0.0);
        s
    }

    fn put(&mut self, s: Vec<f64>) {
        if s.capacity() > 0 {
            self.slabs.push(s);
        }
    }
}

/// Per-input addressing of a kernel operand: `strides[j]` is the flat
/// element offset the operand's slab moves by when output odometer
/// digit `j` increments.
struct ArgSpec {
    node: usize,
    dim: usize,
    strides: Vec<usize>,
}

/// Aggregation operand: strides split between the outer (free) and
/// inner (aggregated) odometers.
struct AccSpec {
    node: usize,
    outer_strides: Vec<usize>,
    inner_strides: Vec<usize>,
}

enum Kind {
    Label {
        j: usize,
    },
    LabelVec,
    Edge {
        flip: bool,
    },
    CmpEq,
    CmpNe,
    Const {
        values: Vec<f64>,
    },
    Apply {
        func: Func,
        args: Vec<ArgSpec>,
        d_in: usize,
    },
    AggDense {
        agg: Agg,
        value: AccSpec,
        guard: Option<AccSpec>,
        over_len: usize,
        inner_cells: usize,
    },
    AggNbr {
        agg: Agg,
        value: AccSpec,
        x_pos: usize,
        y_stride: usize,
        outgoing: bool,
    },
}

struct Node {
    vars: Vec<Var>,
    dim: usize,
    len: usize,
    data: Vec<f64>,
    kind: Kind,
}

/// Reused serial-path scratch (the parallel path gives each chunk its
/// own small locals instead of sharing these across threads).
#[derive(Default)]
struct ExecScratch {
    input: Vec<f64>,
    result: Vec<f64>,
    digits: Vec<usize>,
    inner_digits: Vec<usize>,
    offsets: Vec<usize>,
    bounds: Vec<usize>,
}

/// The compiled evaluation engine. Owns the lowered plan, every
/// intermediate slab, and the output table; repeated [`Self::eval`]
/// calls on the same expression/graph shape reuse all of them, making
/// steady-state evaluation allocation-free (see [`eval_slab_allocs`]).
///
/// The free functions [`crate::eval::eval`] / [`crate::eval::eval_with`]
/// build a throwaway engine per call; hot loops that evaluate many
/// expressions (the E4/E9 probe harnesses, benchmarks) hold one engine
/// per graph and call [`Self::eval`] for a borrowed result.
pub struct EvalEngine {
    opts: EvalOptions,
    n: usize,
    nodes: Vec<Node>,
    node_of: HashMap<u64, usize>,
    root: usize,
    cache_key: Option<(u64, usize, usize, bool)>,
    root_table: EmbeddingTable,
    pool: SlabPool,
    scratch: ExecScratch,
    /// Structural hashes of [`Expr::Shared`] nodes, keyed by `Arc`
    /// target pointer. Refilled per call (pointers may be reused across
    /// expressions); keeps hashing a shared DAG linear in its distinct
    /// nodes. The map retains its capacity, so steady-state refills
    /// don't allocate.
    hash_memo: HashMap<*const Expr, u64>,
}

impl Default for EvalEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl EvalEngine {
    /// An engine with default [`EvalOptions`].
    pub fn new() -> Self {
        Self::with_options(EvalOptions::default())
    }

    /// An engine with explicit options (ablations).
    pub fn with_options(opts: EvalOptions) -> Self {
        Self {
            opts,
            n: 0,
            nodes: Vec::new(),
            node_of: HashMap::new(),
            root: 0,
            cache_key: None,
            root_table: EmbeddingTable::placeholder(),
            pool: SlabPool::default(),
            scratch: ExecScratch::default(),
            hash_memo: HashMap::new(),
        }
    }

    /// Number of nodes in the current plan (0 before the first call).
    /// Equal subtrees share a node, exactly as the old memo shared
    /// tables.
    pub fn plan_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Evaluates `expr` on `g`, returning a borrow of the engine-owned
    /// result table. Calling again with the same expression shape
    /// (same [`Expr::structural_hash`], vertex count and label
    /// dimension) reuses the cached plan and performs zero heap
    /// allocations.
    ///
    /// # Panics
    /// Panics on ill-typed expressions and out-of-range label atoms,
    /// like [`crate::eval::eval`] — run
    /// [`crate::eval::check_against_graph`] first for untrusted input.
    pub fn eval(&mut self, expr: &Expr, g: &Graph) -> &EmbeddingTable {
        OBS_CALLS.incr();
        self.ensure_plan(expr, g);
        let _sp = gel_obs::span("eval.exec");
        let root_len = self.nodes[self.root].len;
        let mut root_data = self.root_table.take_data();
        if root_data.len() != root_len {
            // The previous result was moved out by `eval_owned`.
            self.pool.put(root_data);
            root_data = self.pool.take(root_len);
        }
        self.nodes[self.root].data = root_data;
        for i in 0..self.nodes.len() {
            let mut data = std::mem::take(&mut self.nodes[i].data);
            exec_node(&self.nodes, i, &mut data, g, self.n, &mut self.scratch);
            self.nodes[i].data = data;
        }
        self.root_table.set_data(std::mem::take(&mut self.nodes[self.root].data));
        &self.root_table
    }

    /// [`Self::eval`], but moves the result out of the engine. The
    /// next call re-acquires a root slab from the pool; use the
    /// borrowing variant on zero-allocation hot paths.
    pub fn eval_owned(&mut self, expr: &Expr, g: &Graph) -> EmbeddingTable {
        self.eval(expr, g);
        let vars = self.root_table.vars().to_vec();
        let dim = self.root_table.dim();
        let data = self.root_table.take_data();
        EmbeddingTable::from_parts(vars, dim, self.n, data)
    }

    /// Lowers a fresh plan unless the cached one already matches
    /// `(expr, g)`'s shape.
    fn ensure_plan(&mut self, expr: &Expr, g: &Graph) {
        // Hash with a pointer memo at `Shared` boundaries — a naive
        // `structural_hash` would unfold the DAG.
        self.hash_memo.clear();
        let root_hash = dag_hash(expr, &mut self.hash_memo);
        let key = (root_hash, g.num_vertices(), g.label_dim(), self.opts.guard_fast_path);
        if self.cache_key == Some(key) {
            return;
        }
        let _sp = gel_obs::span("eval.lower");
        self.cache_key = None;
        // Recycle every slab of the outgoing plan before lowering.
        for node in self.nodes.drain(..) {
            self.pool.put(node.data);
        }
        self.pool.put(self.root_table.take_data());
        self.root_table = EmbeddingTable::placeholder();
        self.node_of.clear();
        self.n = g.num_vertices();
        self.root = self.lower(expr, g).0;
        let root = &mut self.nodes[self.root];
        let data = std::mem::take(&mut root.data);
        self.root_table = EmbeddingTable::from_parts(root.vars.clone(), root.dim, self.n, data);
        // Size the shared serial-path scratch once per plan.
        let mut max_p = 0;
        let mut max_q = 0;
        let mut max_args = 0;
        for node in &self.nodes {
            max_p = max_p.max(node.vars.len());
            match &node.kind {
                Kind::AggDense { over_len, .. } => max_q = max_q.max(*over_len),
                Kind::Apply { args, .. } => max_args = max_args.max(args.len()),
                _ => {}
            }
        }
        self.scratch.digits.resize(max_p, 0);
        self.scratch.inner_digits.resize(max_q, 0);
        self.scratch.offsets.resize(max_args, 0);
        self.cache_key = Some(key);
        OBS_PLAN_BUILDS.incr();
        OBS_PLAN_NODES.add(self.nodes.len() as u64);
    }

    /// Recursively lowers `expr`, returning its node index and its
    /// [`Expr::structural_hash`]. Nodes are pushed children-first, so
    /// an in-order sweep executes the DAG. The hash is folded bottom-up
    /// from child hashes during this same walk ([`Expr::hash_header`]):
    /// the WL-simulation expressions physically embed copies of each
    /// round, so calling `structural_hash` per visited node — as the
    /// old memoizing interpreter did — rehashes every subtree and costs
    /// quadratic time, which dominated end-to-end evaluation.
    fn lower(&mut self, expr: &Expr, g: &Graph) -> (usize, u64) {
        if let Expr::Shared(rc) = expr {
            // `ensure_plan` hashed the whole DAG, so this is a lookup;
            // a hash hit skips the subtree entirely — shared rounds
            // lower exactly once.
            let h = dag_hash(expr, &mut self.hash_memo);
            if let Some(&i) = self.node_of.get(&h) {
                return (i, h);
            }
            return self.lower(rc, g);
        }
        if let Expr::Aggregate { agg, over, value, guard } = expr {
            return self.lower_aggregate(
                g,
                *agg,
                over,
                value,
                guard.as_deref(),
                expr.hash_header(),
            );
        }
        if let Expr::Apply { func, args } = expr {
            let mut key = expr.hash_header();
            let arg_nodes: Vec<usize> = args
                .iter()
                .map(|a| {
                    let (i, h) = self.lower(a, g);
                    key = crate::ast::hash_mix(key, h);
                    i
                })
                .collect();
            if let Some(&i) = self.node_of.get(&key) {
                return (i, key);
            }
            let mut vars: Vec<Var> =
                arg_nodes.iter().flat_map(|&i| self.nodes[i].vars.iter().copied()).collect();
            vars.sort_unstable();
            vars.dedup();
            let d_in: usize = arg_nodes.iter().map(|&i| self.nodes[i].dim).sum();
            let d_out = func.out_dim(d_in).expect("ill-typed Apply");
            let specs = arg_nodes
                .iter()
                .map(|&i| ArgSpec {
                    node: i,
                    dim: self.nodes[i].dim,
                    strides: strides_for(&self.nodes[i].vars, self.nodes[i].dim, &vars, self.n),
                })
                .collect();
            let node =
                self.make_node(vars, d_out, Kind::Apply { func: func.clone(), args: specs, d_in });
            return (self.push_node(node, key), key);
        }
        // Leaves: the header is the full structural hash.
        let key = expr.hash_header();
        if let Some(&i) = self.node_of.get(&key) {
            return (i, key);
        }
        let node = match expr {
            Expr::Label { j, var } => {
                assert!(
                    *j < g.label_dim(),
                    "label component {j} out of range (dim {})",
                    g.label_dim()
                );
                self.make_node(vec![*var], 1, Kind::Label { j: *j })
            }
            Expr::LabelVec { var, dim } => {
                assert_eq!(
                    *dim,
                    g.label_dim(),
                    "LabelVec dimension does not match the graph's label dimension"
                );
                self.make_node(vec![*var], *dim, Kind::LabelVec)
            }
            Expr::Edge { from, to } => {
                let mut vars = vec![*from, *to];
                vars.sort_unstable();
                let flip = vars[0] != *from;
                self.make_node(vars, 1, Kind::Edge { flip })
            }
            Expr::Cmp { a, op, b } => {
                let mut vars = vec![*a, *b];
                vars.sort_unstable();
                let kind = match op {
                    CmpOp::Eq => Kind::CmpEq,
                    CmpOp::Ne => Kind::CmpNe,
                };
                self.make_node(vars, 1, kind)
            }
            Expr::Const { values } => {
                self.make_node(Vec::new(), values.len(), Kind::Const { values: values.clone() })
            }
            Expr::Apply { .. } | Expr::Aggregate { .. } | Expr::Shared(_) => {
                unreachable!("handled above")
            }
        };
        (self.push_node(node, key), key)
    }

    fn push_node(&mut self, node: Node, key: u64) -> usize {
        let i = self.nodes.len();
        self.nodes.push(node);
        self.node_of.insert(key, i);
        i
    }

    fn lower_aggregate(
        &mut self,
        g: &Graph,
        agg: Agg,
        over: &[Var],
        value: &Expr,
        guard: Option<&Expr>,
        header: u64,
    ) -> (usize, u64) {
        let n = self.n;

        // Fast path: single aggregation variable with an edge guard
        // anchored at a free variable — the MPNN neighbourhood shape
        // (DESIGN.md §6 ablation; same detection as the oracle).
        if self.opts.guard_fast_path && over.len() == 1 {
            if let Some(ge @ Expr::Edge { from, to }) = guard {
                let y = over[0];
                let anchor = if *to == y { Some((*from, true)) } else { None }.or(if *from == y {
                    Some((*to, false))
                } else {
                    None
                });
                if let Some((x, outgoing)) = anchor {
                    if x != y {
                        let (vi, vh) = self.lower(value, g);
                        // The guard is an `Edge` leaf, so its header is
                        // its full structural hash.
                        let key = crate::ast::hash_mix(
                            crate::ast::hash_mix(header, vh),
                            ge.hash_header(),
                        );
                        if let Some(&i) = self.node_of.get(&key) {
                            return (i, key);
                        }
                        let vnode = &self.nodes[vi];
                        let dim = vnode.dim;
                        let mut out_vars: Vec<Var> =
                            vnode.vars.iter().copied().filter(|&v| v != y).collect();
                        if !out_vars.contains(&x) {
                            out_vars.push(x);
                            out_vars.sort_unstable();
                        }
                        let value = AccSpec {
                            node: vi,
                            outer_strides: strides_for(&vnode.vars, dim, &out_vars, n),
                            inner_strides: Vec::new(),
                        };
                        let y_stride = strides_for(&vnode.vars, dim, &[y], n)[0];
                        let x_pos = out_vars.iter().position(|&v| v == x).expect("x is free");
                        let node = self.make_node(
                            out_vars,
                            dim,
                            Kind::AggNbr { agg, value, x_pos, y_stride, outgoing },
                        );
                        return (self.push_node(node, key), key);
                    }
                }
            }
        }

        let (vi, vh) = self.lower(value, g);
        let mut key = crate::ast::hash_mix(header, vh);
        let gi = guard.map(|ge| {
            let (i, h) = self.lower(ge, g);
            key = crate::ast::hash_mix(key, h);
            i
        });
        if let Some(&i) = self.node_of.get(&key) {
            return (i, key);
        }
        // Output variables: (value ∪ guard vars) \ over.
        let mut all: Vec<Var> = self.nodes[vi].vars.clone();
        if let Some(gi) = gi {
            all.extend_from_slice(&self.nodes[gi].vars);
        }
        all.sort_unstable();
        all.dedup();
        let out_vars: Vec<Var> = all.iter().copied().filter(|v| !over.contains(v)).collect();
        let over_sorted: Vec<Var> = {
            let mut o = over.to_vec();
            o.sort_unstable();
            o
        };
        let dim = self.nodes[vi].dim;
        let value_spec = AccSpec {
            node: vi,
            outer_strides: strides_for(&self.nodes[vi].vars, dim, &out_vars, n),
            inner_strides: strides_for(&self.nodes[vi].vars, dim, &over_sorted, n),
        };
        let guard_spec = gi.map(|gi| AccSpec {
            node: gi,
            outer_strides: strides_for(&self.nodes[gi].vars, self.nodes[gi].dim, &out_vars, n),
            inner_strides: strides_for(&self.nodes[gi].vars, self.nodes[gi].dim, &over_sorted, n),
        });
        let inner_cells =
            n.checked_pow(over_sorted.len() as u32).expect("too many aggregated variables");
        assert!(over_sorted.len() <= ZERO_STRIDES.len(), "too many aggregated variables");
        let node = self.make_node(
            out_vars,
            dim,
            Kind::AggDense {
                agg,
                value: value_spec,
                guard: guard_spec,
                over_len: over_sorted.len(),
                inner_cells,
            },
        );
        (self.push_node(node, key), key)
    }

    fn make_node(&mut self, vars: Vec<Var>, dim: usize, kind: Kind) -> Node {
        assert!(vars.windows(2).all(|w| w[0] < w[1]), "vars must be strictly ascending");
        let cells = self.n.checked_pow(vars.len() as u32).expect("table too large");
        let len = cells.checked_mul(dim).expect("table too large");
        let data = self.pool.take(len);
        Node { vars, dim, len, data, kind }
    }
}

/// [`Expr::structural_hash`] with a pointer memo at [`Expr::Shared`]
/// boundaries: linear in the DAG's distinct nodes where the naive
/// recursion is linear in its (exponential) unfolding. Produces
/// identical values — `Shared` is transparent to the hash.
fn dag_hash(e: &Expr, memo: &mut HashMap<*const Expr, u64>) -> u64 {
    match e {
        Expr::Shared(rc) => {
            let p = std::sync::Arc::as_ptr(rc);
            if let Some(&h) = memo.get(&p) {
                return h;
            }
            let h = dag_hash(rc, memo);
            memo.insert(p, h);
            h
        }
        Expr::Apply { args, .. } => {
            let mut h = e.hash_header();
            for a in args {
                h = crate::ast::hash_mix(h, dag_hash(a, memo));
            }
            h
        }
        Expr::Aggregate { value, guard, .. } => {
            let mut h = crate::ast::hash_mix(e.hash_header(), dag_hash(value, memo));
            if let Some(g) = guard {
                h = crate::ast::hash_mix(h, dag_hash(g, memo));
            }
            h
        }
        _ => e.hash_header(),
    }
}

/// Strides of a child table (vars `child_vars`, cell width
/// `child_dim`) per digit of an odometer running over `digit_vars`:
/// the flat element offset the child moves by when that digit
/// increments (0 when the digit's variable is not free in the child).
fn strides_for(child_vars: &[Var], child_dim: usize, digit_vars: &[Var], n: usize) -> Vec<usize> {
    digit_vars
        .iter()
        .map(|v| match child_vars.iter().position(|cv| cv == v) {
            Some(pos) => child_dim * n.pow((child_vars.len() - 1 - pos) as u32),
            None => 0,
        })
        .collect()
}

/// Writes the base-`n` digits of `cell` (most significant first).
#[inline]
fn decompose(mut cell: usize, n: usize, digits: &mut [usize]) {
    for d in digits.iter_mut().rev() {
        *d = cell % n;
        cell /= n;
    }
    debug_assert_eq!(cell, 0);
}

#[inline]
fn dot(digits: &[usize], strides: &[usize]) -> usize {
    digits.iter().zip(strides).map(|(d, s)| d * s).sum()
}

/// Advances the output odometer by one cell, updating two incremental
/// offsets (`o1`/`o2`) by their per-digit strides. Must not be called
/// past the last cell of the range.
#[inline]
fn advance2(
    digits: &mut [usize],
    n: usize,
    s1: &[usize],
    o1: &mut usize,
    s2: &[usize],
    o2: &mut usize,
) {
    let mut j = digits.len();
    loop {
        debug_assert!(j > 0, "advanced past the last assignment");
        j -= 1;
        digits[j] += 1;
        if digits[j] < n {
            *o1 += s1[j];
            *o2 += s2[j];
            return;
        }
        digits[j] = 0;
        *o1 -= s1[j] * (n - 1);
        *o2 -= s2[j] * (n - 1);
    }
}

/// One [`crate::func::AggState::push`], inlined against the output
/// cell (which starts zeroed): identical fold order and operations,
/// so aggregates are bit-identical to the oracle's.
#[inline]
fn push_acc(agg: Agg, acc: &mut [f64], x: &[f64], count: usize) {
    match agg {
        Agg::Sum | Agg::Mean => {
            for (a, &v) in acc.iter_mut().zip(x) {
                *a += v;
            }
        }
        Agg::Max => {
            if count == 0 {
                acc.copy_from_slice(x);
            } else {
                for (a, &v) in acc.iter_mut().zip(x) {
                    *a = a.max(v);
                }
            }
        }
        Agg::Min => {
            if count == 0 {
                acc.copy_from_slice(x);
            } else {
                for (a, &v) in acc.iter_mut().zip(x) {
                    *a = a.min(v);
                }
            }
        }
    }
}

/// Splits `total_cells` into contiguous per-thread ranges (element
/// bounds, cell-aligned) for `rayon::par_parts_mut`.
fn chunk_bounds(bounds: &mut Vec<usize>, total_cells: usize, dim: usize) -> bool {
    let threads = rayon::current_num_threads();
    if threads < 2 || total_cells < 2 {
        return false;
    }
    let parts = threads.min(total_cells);
    bounds.clear();
    for t in 0..=parts {
        bounds.push(total_cells * t / parts * dim);
    }
    true
}

fn exec_node(
    nodes: &[Node],
    i: usize,
    out: &mut [f64],
    g: &Graph,
    n: usize,
    scratch: &mut ExecScratch,
) {
    let node = &nodes[i];
    let d = node.dim;
    match &node.kind {
        Kind::Label { j } => {
            for (v, o) in out.iter_mut().enumerate() {
                *o = g.label(v as Vertex)[*j];
            }
        }
        Kind::LabelVec => {
            for v in 0..n {
                out[v * d..(v + 1) * d].copy_from_slice(g.label(v as Vertex));
            }
        }
        Kind::Edge { flip } => {
            out.fill(0.0);
            for (u, v) in g.arcs() {
                let (a, b) = if *flip { (v, u) } else { (u, v) };
                out[a as usize * n + b as usize] = 1.0;
            }
        }
        // Only the diagonal differs from the constant fill, so neither
        // comparison kernel visits all n² cells cell-by-cell.
        Kind::CmpEq => {
            out.fill(0.0);
            for v in 0..n {
                out[v * n + v] = 1.0;
            }
        }
        Kind::CmpNe => {
            out.fill(1.0);
            for v in 0..n {
                out[v * n + v] = 0.0;
            }
        }
        Kind::Const { values } => out.copy_from_slice(values),
        Kind::Apply { func, args, d_in } => {
            let p = node.vars.len();
            let total = node.len.checked_div(d).unwrap_or(0);
            let work = total.saturating_mul(d_in + d);
            if work >= PAR_MIN_WORK && chunk_bounds(&mut scratch.bounds, total, d) {
                let bounds = &scratch.bounds[..];
                rayon::par_parts_mut(out, bounds, |t, part| {
                    let mut input = Vec::with_capacity(*d_in);
                    let mut result = Vec::with_capacity(d);
                    let mut digits = vec![0usize; p];
                    let mut offsets = vec![0usize; args.len()];
                    run_apply(
                        nodes,
                        func,
                        args,
                        part,
                        bounds[t] / d.max(1),
                        part.len() / d.max(1),
                        n,
                        d,
                        &mut input,
                        &mut result,
                        &mut digits,
                        &mut offsets,
                    );
                });
            } else {
                let digits = &mut scratch.digits[..p];
                let offsets = &mut scratch.offsets[..args.len()];
                run_apply(
                    nodes,
                    func,
                    args,
                    out,
                    0,
                    total,
                    n,
                    d,
                    &mut scratch.input,
                    &mut scratch.result,
                    digits,
                    offsets,
                );
            }
        }
        Kind::AggDense { agg, value, guard, over_len, inner_cells } => {
            let p = node.vars.len();
            let total = node.len.checked_div(d).unwrap_or(0);
            let work = total.saturating_mul(*inner_cells).saturating_mul(d.max(1));
            if work >= PAR_MIN_WORK && chunk_bounds(&mut scratch.bounds, total, d) {
                let bounds = &scratch.bounds[..];
                rayon::par_parts_mut(out, bounds, |t, part| {
                    let mut digits = vec![0usize; p];
                    let mut inner_digits = vec![0usize; *over_len];
                    run_agg_dense(
                        nodes,
                        *agg,
                        value,
                        guard.as_ref(),
                        part,
                        bounds[t] / d.max(1),
                        part.len() / d.max(1),
                        n,
                        d,
                        *inner_cells,
                        &mut digits,
                        &mut inner_digits,
                    );
                });
            } else {
                let (digits, inner_digits) =
                    (&mut scratch.digits[..p], &mut scratch.inner_digits[..*over_len]);
                run_agg_dense(
                    nodes,
                    *agg,
                    value,
                    guard.as_ref(),
                    out,
                    0,
                    total,
                    n,
                    d,
                    *inner_cells,
                    digits,
                    inner_digits,
                );
            }
        }
        Kind::AggNbr { agg, value, x_pos, y_stride, outgoing } => {
            let p = node.vars.len();
            let total = node.len.checked_div(d).unwrap_or(0);
            let avg_deg = g.num_arcs() / n.max(1) + 1;
            let work = total.saturating_mul(avg_deg).saturating_mul(d.max(1));
            if work >= PAR_MIN_WORK && chunk_bounds(&mut scratch.bounds, total, d) {
                let bounds = &scratch.bounds[..];
                rayon::par_parts_mut(out, bounds, |t, part| {
                    let mut digits = vec![0usize; p];
                    run_agg_nbr(
                        nodes,
                        g,
                        *agg,
                        value,
                        *x_pos,
                        *y_stride,
                        *outgoing,
                        part,
                        bounds[t] / d.max(1),
                        part.len() / d.max(1),
                        n,
                        d,
                        &mut digits,
                    );
                });
            } else {
                let digits = &mut scratch.digits[..p];
                run_agg_nbr(
                    nodes, g, *agg, value, *x_pos, *y_stride, *outgoing, out, 0, total, n, d,
                    digits,
                );
            }
        }
    }
}

/// The `Apply` kernel over a contiguous output-cell range: gather each
/// argument's cell through its incremental offset into one packed
/// input row, apply `func`, write the result row. Identical per-cell
/// order to the oracle's `for_each_assignment` loop.
#[allow(clippy::too_many_arguments)]
fn run_apply(
    nodes: &[Node],
    func: &Func,
    args: &[ArgSpec],
    out: &mut [f64],
    start_cell: usize,
    cells: usize,
    n: usize,
    d: usize,
    input: &mut Vec<f64>,
    result: &mut Vec<f64>,
    digits: &mut [usize],
    offsets: &mut [usize],
) {
    if cells == 0 {
        return;
    }
    decompose(start_cell, n, digits);
    for (o, arg) in offsets.iter_mut().zip(args) {
        *o = dot(digits, &arg.strides);
    }
    for c in 0..cells {
        input.clear();
        for (o, arg) in offsets.iter().zip(args) {
            input.extend_from_slice(&nodes[arg.node].data[*o..*o + arg.dim]);
        }
        func.apply(input, result);
        out[c * d..(c + 1) * d].copy_from_slice(result);
        if c + 1 < cells {
            advance_args(digits, n, args, offsets);
        }
    }
}

#[inline]
fn advance_args(digits: &mut [usize], n: usize, args: &[ArgSpec], offsets: &mut [usize]) {
    let mut j = digits.len();
    loop {
        debug_assert!(j > 0, "advanced past the last assignment");
        j -= 1;
        digits[j] += 1;
        if digits[j] < n {
            for (o, arg) in offsets.iter_mut().zip(args) {
                *o += arg.strides[j];
            }
            return;
        }
        digits[j] = 0;
        for (o, arg) in offsets.iter_mut().zip(args) {
            *o -= arg.strides[j] * (n - 1);
        }
    }
}

/// The dense aggregation kernel: for every output assignment, stream
/// the inner odometer over the aggregated variables and fold passing
/// value cells straight into the (pre-zeroed) output cell.
#[allow(clippy::too_many_arguments)]
fn run_agg_dense(
    nodes: &[Node],
    agg: Agg,
    value: &AccSpec,
    guard: Option<&AccSpec>,
    out: &mut [f64],
    start_cell: usize,
    cells: usize,
    n: usize,
    d: usize,
    inner_cells: usize,
    digits: &mut [usize],
    inner_digits: &mut [usize],
) {
    if cells == 0 {
        return;
    }
    let q = inner_digits.len();
    let (guarded, g_node, g_outer, g_inner) = match guard {
        Some(gs) => (true, gs.node, &gs.outer_strides[..], &gs.inner_strides[..]),
        None => (false, value.node, &ZERO_STRIDES[..digits.len()], &ZERO_STRIDES[..q]),
    };
    let vdata = &nodes[value.node].data[..];
    let gdata = &nodes[g_node].data[..];
    decompose(start_cell, n, digits);
    let mut vbase = dot(digits, &value.outer_strides);
    let mut gbase = dot(digits, g_outer);
    for c in 0..cells {
        let cell = &mut out[c * d..(c + 1) * d];
        cell.fill(0.0);
        let mut count = 0usize;
        inner_digits.fill(0);
        let mut voff = vbase;
        let mut goff = gbase;
        for ic in 0..inner_cells {
            if !guarded || gdata[goff] != 0.0 {
                push_acc(agg, cell, &vdata[voff..voff + d], count);
                count += 1;
            }
            if ic + 1 < inner_cells {
                advance2(inner_digits, n, &value.inner_strides, &mut voff, g_inner, &mut goff);
            }
        }
        if agg == Agg::Mean && count > 0 {
            let cf = count as f64;
            for a in cell {
                *a /= cf;
            }
        }
        if c + 1 < cells {
            advance2(digits, n, &value.outer_strides, &mut vbase, g_outer, &mut gbase);
        }
    }
}

/// The CSR neighbour-list kernel for `agg_{y}(value | E(x, y))`: the
/// generalized edge-guard fast path — any number of free variables,
/// neighbour iteration in adjacency order, same accumulation
/// discipline as the dense kernel.
#[allow(clippy::too_many_arguments)]
fn run_agg_nbr(
    nodes: &[Node],
    g: &Graph,
    agg: Agg,
    value: &AccSpec,
    x_pos: usize,
    y_stride: usize,
    outgoing: bool,
    out: &mut [f64],
    start_cell: usize,
    cells: usize,
    n: usize,
    d: usize,
    digits: &mut [usize],
) {
    if cells == 0 {
        return;
    }
    let vdata = &nodes[value.node].data[..];
    let mut unused = 0usize;
    decompose(start_cell, n, digits);
    let mut vbase = dot(digits, &value.outer_strides);
    for c in 0..cells {
        let cell = &mut out[c * d..(c + 1) * d];
        cell.fill(0.0);
        let anchor = digits[x_pos] as Vertex;
        let nbrs = if outgoing { g.out_neighbors(anchor) } else { g.in_neighbors(anchor) };
        let mut count = 0usize;
        for &w in nbrs {
            let voff = vbase + w as usize * y_stride;
            push_acc(agg, cell, &vdata[voff..voff + d], count);
            count += 1;
        }
        if agg == Agg::Mean && count > 0 {
            let cf = count as f64;
            for a in cell {
                *a /= cf;
            }
        }
        if c + 1 < cells {
            advance2(
                digits,
                n,
                &value.outer_strides,
                &mut vbase,
                &ZERO_STRIDES[..digits.len()],
                &mut unused,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::build::*;
    use crate::eval::oracle::{oracle_eval, oracle_eval_with};
    use crate::random_expr::{random_gel_graph, RandomExprConfig};
    use gel_graph::families::cycle;
    use gel_graph::GraphBuilder;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A random *directed* labelled graph (arc (u,v) present does not
    /// imply (v,u)), so the engine's in/out-neighbour handling and the
    /// reversed-guard fast path both get exercised.
    fn random_graph(n: usize, label_dim: usize, rng: &mut StdRng) -> Graph {
        let mut b = GraphBuilder::new(n);
        for u in 0..n as Vertex {
            for v in 0..n as Vertex {
                if u != v && rng.gen_bool(0.3) {
                    b.add_arc(u, v);
                }
            }
        }
        let labels: Vec<f64> = (0..n * label_dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
        b.build().with_labels(labels, label_dim)
    }

    fn assert_engine_matches_oracle(e: &Expr, g: &Graph) {
        for fast in [true, false] {
            let opts = EvalOptions { guard_fast_path: fast };
            let want = oracle_eval_with(e, g, opts);
            let mut eng = EvalEngine::with_options(opts);
            assert_eq!(eng.eval(e, g), &want, "engine diverged (fast_path={fast}) on {e}");
            // A second call replays the cached plan; still identical.
            assert_eq!(eng.eval(e, g), &want, "cached plan diverged (fast_path={fast}) on {e}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        // Random GEL_k expressions (k ∈ {1,2,3} ⇒ intermediate tables of
        // arity 0–3), all four aggregators, labelled directed graphs:
        // the engine must reproduce the oracle's tables bit-for-bit,
        // with the fast path both on and off.
        fn engine_matches_oracle_on_random_gel(seed in 0u64..1_000_000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 3 + (seed % 5) as usize;
            let label_dim = 1 + (seed % 2) as usize;
            let g = random_graph(n, label_dim, &mut rng);
            let cfg = RandomExprConfig {
                label_dim,
                max_depth: 3,
                max_dim: 3,
                aggregators: vec![Agg::Sum, Agg::Mean, Agg::Max, Agg::Min],
            };
            let k = 1 + (seed % 3) as usize;
            let e = random_gel_graph(&cfg, k, &mut rng);
            for fast in [true, false] {
                let opts = EvalOptions { guard_fast_path: fast };
                let want = oracle_eval_with(&e, &g, opts);
                let mut eng = EvalEngine::with_options(opts);
                prop_assert_eq!(eng.eval(&e, &g), &want);
                prop_assert_eq!(eng.eval(&e, &g), &want);
            }
        }
    }

    #[test]
    fn engine_matches_oracle_on_handcrafted_shapes() {
        let labels: Vec<f64> = (0..14).map(|i| f64::from(i) * 0.5 - 3.0).collect();
        let g = cycle(7).with_labels(labels, 2);
        let exprs = vec![
            eq(1, 2),
            ne(1, 2),
            lab_vec(1, 2),
            hash(7, lab_vec(1, 2)),
            constant(vec![2.0, -1.0, 0.5]),
            agg_over(Agg::Min, vec![2], mul2(lab(0, 1), lab(1, 2)), Some(ne(1, 2))),
            agg_over(Agg::Max, vec![1, 2], add2(lab(0, 1), lab(0, 2)), None),
            agg_over(Agg::Sum, vec![2], lab_vec(1, 2), Some(eq(1, 2))),
            nbr_agg(Agg::Min, 1, 2, lab_vec(2, 2)),
            // Reversed guard: E(y, x) anchors the in-neighbour walk.
            agg_over(Agg::Mean, vec![2], lab(0, 2), Some(edge(2, 1))),
            global_agg(Agg::Mean, 1, nbr_agg(Agg::Sum, 1, 2, mul2(lab(0, 1), lab(0, 2)))),
            // Aggregated variable absent from the value: n copies of a cell.
            agg_over(Agg::Sum, vec![2], lab(1, 1), None),
        ];
        for e in exprs {
            assert_engine_matches_oracle(&e, &g);
        }
    }

    #[test]
    fn engine_matches_oracle_on_directed_random_graphs() {
        let mut rng = StdRng::seed_from_u64(0xD15EA5E);
        let g = random_graph(8, 1, &mut rng);
        let exprs = vec![
            nbr_agg(Agg::Sum, 1, 2, lab(0, 2)),
            agg_over(Agg::Sum, vec![2], lab(0, 2), Some(edge(2, 1))),
            mul2(nbr_agg(Agg::Max, 1, 2, lab(0, 2)), nbr_agg(Agg::Min, 1, 2, lab(0, 2))),
        ];
        for e in exprs {
            assert_engine_matches_oracle(&e, &g);
        }
    }

    /// Exercises the parallel outer-assignment chunking of all three
    /// heavy kernels (Apply, dense Aggregate, neighbour Aggregate) on
    /// shapes big enough to cross [`PAR_MIN_WORK`], asserting
    /// bit-identical tables at 1 and 4 threads against the serial
    /// oracle.
    #[test]
    fn parallel_kernels_are_bit_identical() {
        let n = 40;
        let mut rng = StdRng::seed_from_u64(42);
        let g = random_graph(n, 1, &mut rng);
        let tri = apply(Func::Mul { arity: 3, dim: 1 }, vec![edge(1, 2), edge(2, 3), edge(1, 3)]);
        let exprs = vec![
            // Apply over n³ cells + dense aggregation over x3.
            agg_over(Agg::Sum, vec![3], tri, None),
            // Neighbour kernel with a 2-variable output table.
            nbr_agg(Agg::Sum, 1, 2, mul2(lab(0, 2), lab(0, 3))),
            // Mean keeps the count/divide discipline under chunking.
            agg_over(Agg::Mean, vec![3], add2(lab(0, 1), mul2(lab(0, 2), lab(0, 3))), None),
        ];
        for e in &exprs {
            let want = oracle_eval(e, &g);
            for threads in [1, 4] {
                rayon::set_num_threads(threads);
                let mut eng = EvalEngine::new();
                assert_eq!(eng.eval(e, &g), &want, "thread count {threads} changed {e}");
                rayon::set_num_threads(0);
            }
        }
    }

    #[test]
    fn plan_dedups_shared_subtrees() {
        let g = cycle(5);
        let deg = nbr_agg(Agg::Sum, 1, 2, constant(vec![1.0]));
        let e = mul2(deg.clone(), deg);
        let mut eng = EvalEngine::new();
        eng.eval(&e, &g);
        // const → AggNbr (guard folded into the kernel) → mul: the
        // duplicated degree subtree lowers to a single shared node.
        assert_eq!(eng.plan_nodes(), 3);
    }

    #[test]
    fn owned_results_and_plan_reuse() {
        let g = cycle(6);
        let e = global_agg(Agg::Sum, 1, nbr_agg(Agg::Sum, 1, 2, constant(vec![1.0])));
        let mut eng = EvalEngine::new();
        let a = eng.eval_owned(&e, &g);
        let b = eng.eval_owned(&e, &g);
        assert_eq!(a, b);
        assert_eq!(a.value(), &[12.0]);
        // A different graph shape relowers the plan transparently.
        assert_eq!(eng.eval(&e, &cycle(7)).value(), &[14.0]);
        // And switching back works too (slabs recycle through the pool).
        assert_eq!(eng.eval(&e, &g).value(), &[12.0]);
    }
}
