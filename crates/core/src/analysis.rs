//! The *recipe* (paper slide 35): cast an embedding method as an
//! expression, read off the fragment it lives in, and conclude an upper
//! bound on its separation power.
//!
//! * variable width `k` ⇒ the expression is in `GEL_k(Ω,Θ)` and its
//!   separation power is bounded by `(k−1)-WL` (slide 66);
//! * if moreover every atom and aggregation is *guarded* in the MPNN
//!   sense (slides 42–47), the expression is in
//!   `MPNN(Ω,Θ) = GGEL_2(Ω,Θ)` and the bound improves to colour
//!   refinement (slide 51).

use std::fmt;

use crate::ast::Expr;
use crate::func::Agg;
use crate::table::Var;

/// The syntactic fragment an expression belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fragment {
    /// The guarded 2-variable fragment `MPNN(Ω,Θ)` (slide 47).
    Mpnn,
    /// `GEL_k(Ω,Θ)`: at most `k` distinct variables (slide 62).
    Gel(usize),
}

/// The WL-hierarchy bound implied by the fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WlBound {
    /// Separation power ⊆ colour refinement (slide 51).
    ColorRefinement,
    /// Separation power ⊆ folklore `k`-WL (slide 66).
    KWl(usize),
}

impl fmt::Display for WlBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WlBound::ColorRefinement => write!(f, "colour refinement"),
            WlBound::KWl(k) => write!(f, "{k}-WL"),
        }
    }
}

/// The output of the recipe analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpressivenessReport {
    /// Fragment the expression syntactically belongs to.
    pub fragment: Fragment,
    /// Number of distinct variables used.
    pub width: usize,
    /// Implied upper bound on separation power.
    pub bound: WlBound,
    /// Aggregators appearing in the expression.
    pub aggregators: Vec<Agg>,
    /// Whether the expression is closed (graph embedding) or has free
    /// variables (p-vertex embedding).
    pub free_vars: Vec<Var>,
}

impl fmt::Display for ExpressivenessReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let frag = match self.fragment {
            Fragment::Mpnn => "MPNN(Ω,Θ)".to_string(),
            Fragment::Gel(k) => format!("GEL_{}(Ω,Θ)", k),
        };
        write!(f, "fragment {frag}, width {}, separation power ⊆ ρ({})", self.width, self.bound)
    }
}

/// Runs the recipe on an expression.
pub fn analyze(expr: &Expr) -> ExpressivenessReport {
    let width = expr.all_vars().len().max(1);
    let guarded = is_mpnn(expr);
    let fragment = if guarded { Fragment::Mpnn } else { Fragment::Gel(width) };
    let bound = match fragment {
        Fragment::Mpnn => WlBound::ColorRefinement,
        // GEL_k ⊆ C^k in counting power ⇒ bounded by (k−1)-WL; GEL_1 is
        // label-only (bounded by CR trivially, report CR).
        Fragment::Gel(k) if k >= 2 => WlBound::KWl(k - 1),
        Fragment::Gel(_) => WlBound::ColorRefinement,
    };
    let mut aggregators = Vec::new();
    collect_aggs(expr, &mut aggregators);
    aggregators.dedup();
    ExpressivenessReport {
        fragment,
        width,
        bound,
        aggregators,
        free_vars: expr.free_vars().into_iter().collect(),
    }
}

fn collect_aggs(expr: &Expr, out: &mut Vec<Agg>) {
    match expr {
        Expr::Apply { args, .. } => {
            for a in args {
                collect_aggs(a, out);
            }
        }
        Expr::Aggregate { agg, value, guard, .. } => {
            if !out.contains(agg) {
                out.push(*agg);
            }
            collect_aggs(value, out);
            if let Some(g) = guard {
                collect_aggs(g, out);
            }
        }
        Expr::Shared(e) => collect_aggs(e, out),
        _ => {}
    }
}

/// Syntactic membership in the `MPNN(Ω,Θ)` fragment (slides 42–47):
///
/// * only variables `x1`, `x2` appear;
/// * atoms are labels or constants — `E` appears only as an aggregation
///   guard, and equality atoms do not appear;
/// * every aggregation binds exactly one variable, its guard is exactly
///   the edge atom between the free anchor and the bound variable, and
///   the aggregation body's free variables are among `{anchor, bound}`;
/// * a closed expression may additionally use one *global* aggregation
///   over the single remaining free variable (slide 46).
pub fn is_mpnn(expr: &Expr) -> bool {
    if !expr.all_vars().iter().all(|&v| v == 1 || v == 2) {
        return false;
    }
    mpnn_shape(expr, true)
}

fn contains_global_agg(expr: &Expr) -> bool {
    match expr {
        Expr::Aggregate { guard: None, .. } => true,
        Expr::Aggregate { value, guard: Some(g), .. } => {
            contains_global_agg(value) || contains_global_agg(g)
        }
        Expr::Apply { args, .. } => args.iter().any(contains_global_agg),
        Expr::Shared(e) => contains_global_agg(e),
        _ => false,
    }
}

fn mpnn_shape(expr: &Expr, allow_global: bool) -> bool {
    match expr {
        Expr::Label { .. } | Expr::LabelVec { .. } | Expr::Const { .. } => true,
        Expr::Edge { .. } | Expr::Cmp { .. } => false, // only allowed as guards
        Expr::Apply { args, .. } => {
            if args.iter().any(contains_global_agg) {
                // A global aggregate is a *graph*-level value; it may be
                // post-processed by readout functions (slide 46) but not
                // combined with open vertex expressions — that would be a
                // "virtual node" feature exceeding the CR bound.
                allow_global && args.iter().all(|a| a.free_vars().is_empty() && mpnn_shape(a, true))
            } else {
                args.iter().all(|a| mpnn_shape(a, allow_global))
            }
        }
        Expr::Aggregate { over, value, guard, .. } => {
            if over.len() != 1 {
                return false;
            }
            let y = over[0];
            match guard {
                Some(g) => {
                    // Must be exactly E(x, y) or E(y, x) with x ≠ y.
                    let ok_guard = matches!(
                        g.as_ref(),
                        Expr::Edge { from, to }
                            if (*to == y && *from != y) || (*from == y && *to != y)
                    );
                    ok_guard && mpnn_shape(value, false)
                }
                None => {
                    // Global aggregation: only allowed at the outermost
                    // level (readout, slide 46) and the body must be a
                    // 1-variable MPNN expression.
                    allow_global && value.free_vars().len() <= 1 && mpnn_shape(value, false)
                }
            }
        }
        Expr::Shared(e) => mpnn_shape(e, allow_global),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::build::*;
    use crate::func::Func;

    #[test]
    fn mpnn_shape_accepted() {
        // GIN-ish layer: relu(add(lab(x1), sum_{x2}(lab(x2)|E(x1,x2)))).
        let layer = relu(add2(lab(0, 1), nbr_agg(Agg::Sum, 1, 2, lab(0, 2))));
        let r = analyze(&layer);
        assert_eq!(r.fragment, Fragment::Mpnn);
        assert_eq!(r.bound, WlBound::ColorRefinement);
        assert_eq!(r.width, 2);
        assert_eq!(r.free_vars, vec![1]);
    }

    #[test]
    fn readout_still_mpnn() {
        let layer = nbr_agg(Agg::Sum, 1, 2, lab(0, 2));
        let graph_emb = global_agg(Agg::Sum, 1, layer);
        let r = analyze(&graph_emb);
        assert_eq!(r.fragment, Fragment::Mpnn);
        assert!(r.free_vars.is_empty());
    }

    #[test]
    fn naked_edge_atom_leaves_fragment() {
        // E(x1,x2) outside a guard is full GEL_2.
        let e = mul2(edge(1, 2), lab(0, 1));
        let r = analyze(&e);
        assert_eq!(r.fragment, Fragment::Gel(2));
        assert_eq!(r.bound, WlBound::KWl(1));
    }

    #[test]
    fn equality_atom_leaves_fragment() {
        let e = agg_over(Agg::Sum, vec![2], lab(0, 2), Some(ne(1, 2)));
        assert_eq!(analyze(&e).fragment, Fragment::Gel(2));
    }

    #[test]
    fn three_variables_is_gel3_bounded_by_2wl() {
        let tri = apply(Func::Mul { arity: 3, dim: 1 }, vec![edge(1, 2), edge(2, 3), edge(1, 3)]);
        let e = agg_over(Agg::Sum, vec![1, 2, 3], tri, None);
        let r = analyze(&e);
        assert_eq!(r.fragment, Fragment::Gel(3));
        assert_eq!(r.bound, WlBound::KWl(2));
        assert_eq!(r.width, 3);
    }

    #[test]
    fn global_agg_inside_body_rejected_from_mpnn() {
        // An inner unguarded aggregation is not the MPNN shape.
        let inner = global_agg(Agg::Sum, 2, lab(0, 2));
        let e = add2(lab(0, 1), inner);
        assert!(!is_mpnn(&e));
    }

    #[test]
    fn aggregators_are_collected() {
        let e = nbr_agg(Agg::Max, 1, 2, nbr_agg(Agg::Sum, 2, 1, lab(0, 1)));
        let r = analyze(&e);
        assert!(r.aggregators.contains(&Agg::Max));
        assert!(r.aggregators.contains(&Agg::Sum));
    }

    #[test]
    fn report_displays() {
        let e = nbr_agg(Agg::Sum, 1, 2, lab(0, 2));
        let s = analyze(&e).to_string();
        assert!(s.contains("MPNN"));
        assert!(s.contains("colour refinement"));
    }
}
