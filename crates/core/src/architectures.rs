//! Compiling named GNN architectures into `GEL(Ω,Θ)` expressions —
//! the "validation" step of the paper's plan of action (slides 34–35,
//! 48, 63): *"a new embedding method just needs to be cast in the
//! embedding language to know a bound on its expressive power."*
//!
//! Each builder takes explicit weights (so compiled expressions agree
//! exactly with the direct implementations in `gel-gnn`) and returns a
//! 1-free-variable expression (vertex embedding) or a closed expression
//! (graph embedding after readout).

use gel_tensor::{Activation, Matrix};
use rand::Rng;

use crate::ast::{build, Expr};
use crate::func::{Agg, Func};

/// Weights of one GNN-101 layer (paper slide 13):
/// `F_v ← σ(F_v W₁ + Σ_{u∈N(v)} F_u W₂ + b)`.
#[derive(Debug, Clone)]
pub struct Gnn101Layer {
    /// Self weight `W₁ : d_in × d_out`.
    pub w1: Matrix,
    /// Neighbour weight `W₂ : d_in × d_out`.
    pub w2: Matrix,
    /// Bias `b : d_out`.
    pub bias: Vec<f64>,
    /// The non-linearity σ.
    pub activation: Activation,
}

impl Gnn101Layer {
    /// Random layer with the given dimensions.
    pub fn random(d_in: usize, d_out: usize, activation: Activation, rng: &mut impl Rng) -> Self {
        let a = (6.0 / (d_in + d_out) as f64).sqrt();
        let mut sample = |r: usize, c: usize| Matrix::from_fn(r, c, |_, _| rng.gen_range(-a..=a));
        Self {
            w1: sample(d_in, d_out),
            w2: sample(d_in, d_out),
            bias: (0..d_out).map(|_| rng.gen_range(-a..=a)).collect(),
            activation,
        }
    }
}

/// Compiles an L-layer GNN-101 into a vertex-embedding expression with
/// free variable `x1` (slide 40's "easy exercise": GNN 101s are
/// MPNNs).
///
/// Layer `t` becomes
/// `σ( add( linear_{W₁}(φ_{t−1}(x1)),
///          linear_{W₂}( sum_{x2}(φ_{t−1}(x2) | E(x1,x2)) ), b ) )`,
/// alternating the roles of `x1`/`x2` so only two variables are used.
///
/// # Panics
/// Panics on inter-layer dimension mismatches.
pub fn gnn101_vertex_expr(layers: &[Gnn101Layer], label_dim: usize) -> Expr {
    let mut cur = build::lab_vec(1, label_dim); // free var x1
    let mut cur_dim = label_dim;
    for layer in layers {
        assert_eq!(layer.w1.rows(), cur_dim, "layer input dim mismatch");
        assert_eq!(layer.w1.shape(), layer.w2.shape(), "W1/W2 shape mismatch");
        let (anchor, other) = (1u8, 2u8);
        // Swap x1/x2 so the previous layer's value is read at the
        // aggregated vertex; a swap is capture-avoiding (slide 45:
        // "with the roles of x1 and x2 reversed").
        let prev_other = cur.swap_vars(anchor, other);
        let self_term = build::apply(
            Func::Linear { weights: layer.w1.clone(), bias: vec![0.0; layer.w1.cols()] },
            vec![cur],
        );
        let nbr_sum = build::nbr_agg(Agg::Sum, anchor, other, prev_other);
        let nbr_term = build::apply(
            Func::Linear { weights: layer.w2.clone(), bias: layer.bias.clone() },
            vec![nbr_sum],
        );
        let d_out = layer.w1.cols();
        let summed = build::apply(Func::Add { arity: 2, dim: d_out }, vec![self_term, nbr_term]);
        cur = build::apply(Func::Act(layer.activation), vec![summed]);
        cur_dim = d_out;
    }
    cur
}

/// Compiles GNN-101 + sum-readout into a closed graph-embedding
/// expression (slide 14): `σ( Σ_v F_v^{(L)} W + b )`.
pub fn gnn101_graph_expr(
    layers: &[Gnn101Layer],
    label_dim: usize,
    readout_w: Matrix,
    readout_b: Vec<f64>,
    readout_act: Activation,
) -> Expr {
    let vertex = gnn101_vertex_expr(layers, label_dim);
    let pooled = build::global_agg(Agg::Sum, 1, vertex);
    let lin = build::apply(Func::Linear { weights: readout_w, bias: readout_b }, vec![pooled]);
    build::apply(Func::Act(readout_act), vec![lin])
}

/// A GIN layer (Xu et al. 2019): `h_v ← MLP((1+ε)·h_v + Σ_u h_u)`.
/// Here the MLP is a single dense layer (enough for the expressiveness
/// experiments; `gel-gnn` has the trainable deep version).
#[derive(Debug, Clone)]
pub struct GinLayer {
    /// The ε weight on the self term.
    pub eps: f64,
    /// Dense weights `d_in × d_out`.
    pub w: Matrix,
    /// Bias.
    pub bias: Vec<f64>,
    /// Activation.
    pub activation: Activation,
}

/// Compiles GIN layers into a vertex expression.
pub fn gin_vertex_expr(layers: &[GinLayer], label_dim: usize) -> Expr {
    let mut cur = build::lab_vec(1, label_dim);
    let mut cur_dim = label_dim;
    for layer in layers {
        assert_eq!(layer.w.rows(), cur_dim);
        let (anchor, other) = (1u8, 2u8);
        let prev_other = cur.swap_vars(anchor, other);
        let self_term = build::apply(Func::Scale(1.0 + layer.eps), vec![cur]);
        let nbr_sum = build::nbr_agg(Agg::Sum, anchor, other, prev_other);
        let summed = build::apply(Func::Add { arity: 2, dim: cur_dim }, vec![self_term, nbr_sum]);
        let lin = build::apply(
            Func::Linear { weights: layer.w.clone(), bias: layer.bias.clone() },
            vec![summed],
        );
        cur = build::apply(Func::Act(layer.activation), vec![lin]);
        cur_dim = layer.w.cols();
    }
    cur
}

/// A GCN layer (Kipf & Welling 2017) in mean-aggregation form:
/// `h_v ← σ( mean_{u ∈ N(v)}(h_u) · W + b )` — the normalized
/// convolution with symmetric normalization replaced by the mean,
/// which keeps it inside `MPNN(Ω, {mean})`.
#[derive(Debug, Clone)]
pub struct GcnLayer {
    /// Dense weights.
    pub w: Matrix,
    /// Bias.
    pub bias: Vec<f64>,
    /// Activation.
    pub activation: Activation,
}

/// Compiles mean-GCN layers into a vertex expression.
pub fn gcn_vertex_expr(layers: &[GcnLayer], label_dim: usize) -> Expr {
    let mut cur = build::lab_vec(1, label_dim);
    for layer in layers {
        let (anchor, other) = (1u8, 2u8);
        let prev_other = cur.swap_vars(anchor, other);
        let nbr_mean = build::nbr_agg(Agg::Mean, anchor, other, prev_other);
        let lin = build::apply(
            Func::Linear { weights: layer.w.clone(), bias: layer.bias.clone() },
            vec![nbr_mean],
        );
        cur = build::apply(Func::Act(layer.activation), vec![lin]);
    }
    cur
}

/// A GraphSage layer (Hamilton et al. 2017) with max-pool aggregation:
/// `h_v ← σ( concat(h_v, max_{u}(h_u)) · W + b )`.
#[derive(Debug, Clone)]
pub struct SageLayer {
    /// Dense weights `2·d_in × d_out`.
    pub w: Matrix,
    /// Bias.
    pub bias: Vec<f64>,
    /// Activation.
    pub activation: Activation,
}

/// Compiles GraphSage layers into a vertex expression.
pub fn sage_vertex_expr(layers: &[SageLayer], label_dim: usize) -> Expr {
    let mut cur = build::lab_vec(1, label_dim);
    let mut cur_dim = label_dim;
    for layer in layers {
        assert_eq!(layer.w.rows(), 2 * cur_dim, "Sage weights must take concat(self, pooled)");
        let (anchor, other) = (1u8, 2u8);
        let prev_other = cur.swap_vars(anchor, other);
        let nbr_max = build::nbr_agg(Agg::Max, anchor, other, prev_other);
        let cat = build::apply(Func::Concat, vec![cur, nbr_max]);
        let lin = build::apply(
            Func::Linear { weights: layer.w.clone(), bias: layer.bias.clone() },
            vec![cat],
        );
        cur = build::apply(Func::Act(layer.activation), vec![lin]);
        cur_dim = layer.w.cols();
    }
    cur
}

/// A `GEL_3` expression counting triangles through `x1` — a feature no
/// MPNN expression can compute (slide 31 / E12), placed in the language
/// to demonstrate the power gained by a third variable (slides 60, 67).
pub fn triangles_at_vertex_expr() -> Expr {
    let tri = build::apply(
        Func::Mul { arity: 3, dim: 1 },
        vec![build::edge(1, 2), build::edge(2, 3), build::edge(1, 3)],
    );
    // Each unordered triangle through x1 is counted twice (x2/x3 swap).
    build::apply(Func::Scale(0.5), vec![build::agg_over(Agg::Sum, vec![2, 3], tri, None)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, Fragment};
    use crate::eval::eval;
    use gel_graph::families::{complete, cycle, star};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gnn101_expr_is_mpnn_fragment() {
        let mut rng = StdRng::seed_from_u64(1);
        let layers: Vec<Gnn101Layer> =
            (0..3).map(|_| Gnn101Layer::random(1, 1, Activation::ReLU, &mut rng)).collect();
        let e = gnn101_vertex_expr(&layers, 1);
        let r = analyze(&e);
        assert_eq!(r.fragment, Fragment::Mpnn, "slide 40: GNN 101s are MPNNs");
        assert_eq!(r.width, 2);
    }

    #[test]
    fn gnn101_expr_computes_the_recurrence() {
        // One identity layer with W1 = 0, W2 = 1, b = 0, σ = id:
        // output = Σ neighbours' labels.
        let layer = Gnn101Layer {
            w1: Matrix::zeros(1, 1),
            w2: Matrix::identity(1),
            bias: vec![0.0],
            activation: Activation::Identity,
        };
        let e = gnn101_vertex_expr(&[layer], 1);
        let g = star(3); // scalar labels all 1
        let t = eval(&e, &g);
        assert_eq!(t.cell(&[0]), &[3.0]);
        assert_eq!(t.cell(&[1]), &[1.0]);
    }

    #[test]
    fn two_layers_alternate_variables() {
        let layer = || Gnn101Layer {
            w1: Matrix::zeros(1, 1),
            w2: Matrix::identity(1),
            bias: vec![0.0],
            activation: Activation::Identity,
        };
        let e = gnn101_vertex_expr(&[layer(), layer()], 1);
        // Still only 2 variables (slide 42: "we take two variables").
        assert!(e.all_vars().len() <= 2);
        // Two sum layers compute walk counts of length 2.
        let g = star(3);
        let t = eval(&e, &g);
        assert_eq!(t.cell(&[0]), &[3.0]); // 3 walks back to center
        assert_eq!(t.cell(&[1]), &[3.0]);
    }

    #[test]
    fn graph_expr_is_closed_and_invariant() {
        let mut rng = StdRng::seed_from_u64(2);
        let layers: Vec<Gnn101Layer> =
            (0..2).map(|_| Gnn101Layer::random(1, 4, Activation::Tanh, &mut rng)).collect();
        let layers = {
            let mut l = layers;
            l[1] = Gnn101Layer::random(4, 4, Activation::Tanh, &mut rng);
            l
        };
        let e =
            gnn101_graph_expr(&layers, 1, Matrix::identity(4), vec![0.0; 4], Activation::Identity);
        assert!(e.free_vars().is_empty());
        let g = cycle(7);
        let perm: Vec<u32> = (0..7).map(|i| (i + 3) % 7).collect();
        let h = g.permute(&perm);
        assert!(eval(&e, &g).approx_eq(&eval(&e, &h), 1e-9));
    }

    #[test]
    fn gin_gcn_sage_are_mpnn() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = (6.0 / 2.0_f64).sqrt();
        let m = |r: usize, c: usize, rng: &mut StdRng| {
            Matrix::from_fn(r, c, |_, _| rng.gen_range(-a..=a))
        };
        let gin = gin_vertex_expr(
            &[GinLayer {
                eps: 0.1,
                w: m(1, 2, &mut rng),
                bias: vec![0.0; 2],
                activation: Activation::ReLU,
            }],
            1,
        );
        let gcn = gcn_vertex_expr(
            &[GcnLayer { w: m(1, 2, &mut rng), bias: vec![0.0; 2], activation: Activation::ReLU }],
            1,
        );
        let sage = sage_vertex_expr(
            &[SageLayer { w: m(2, 2, &mut rng), bias: vec![0.0; 2], activation: Activation::ReLU }],
            1,
        );
        for (name, e) in [("GIN", gin), ("GCN", gcn), ("Sage", sage)] {
            let r = analyze(&e);
            assert_eq!(r.fragment, Fragment::Mpnn, "{name} must sit in MPNN(Ω,Θ) (slide 63)");
        }
    }

    #[test]
    fn triangle_expr_counts_triangles() {
        let e = triangles_at_vertex_expr();
        let r = analyze(&e);
        assert_eq!(r.fragment, Fragment::Gel(3));
        let t = eval(&e, &complete(4));
        assert_eq!(t.cell(&[0]), &[3.0], "each K4 vertex lies on 3 triangles");
        let t6 = eval(&e, &cycle(6));
        assert_eq!(t6.cell(&[0]), &[0.0]);
    }
}
