//! The function set Ω and aggregation set Θ of `GEL(Ω,Θ)`.
//!
//! The paper parameterizes the language by an arbitrary set Ω of
//! functions `ℝ^{d₁+⋯+d_ℓ} → ℝ^d` (slide 44) and a set Θ of aggregate
//! functions over bags (slide 45). We provide the concrete library the
//! theorems require — "concatenation, linear combinations and
//! non-linear activation functions" (slide 52) plus the mlp-closure of
//! slide 53 — and a bit more (pointwise product for Stone–Weierstrass
//! style arguments, an injective hash for exact WL simulation).

use gel_tensor::{Activation, Matrix};
use serde::{Deserialize, Serialize};

/// A function `F : ℝ^{d_in} → ℝ^{d_out}` from Ω, applied to the
/// concatenation of its argument expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Func {
    /// `x ↦ x · W + b` with `W : d_in × d_out` (row-vector convention).
    Linear {
        /// Weight matrix (`d_in × d_out`).
        weights: Matrix,
        /// Bias of length `d_out`.
        bias: Vec<f64>,
    },
    /// Pointwise non-linearity (dimension preserving).
    Act(Activation),
    /// Identity on the concatenation of the arguments (pure concat).
    Concat,
    /// Pointwise sum of `k` equal-dimension arguments.
    Add {
        /// Number of arguments (each of dimension `dim`).
        arity: usize,
        /// Common argument dimension.
        dim: usize,
    },
    /// Pointwise (Hadamard) product of `k` equal-dimension arguments —
    /// the "product" closure Stone–Weierstrass needs (slide 29).
    Mul {
        /// Number of arguments (each of dimension `dim`).
        arity: usize,
        /// Common argument dimension.
        dim: usize,
    },
    /// Scalar multiple `x ↦ s · x`.
    Scale(f64),
    /// Projection of the slice `[start, start + len)`.
    Proj {
        /// First coordinate of the slice.
        start: usize,
        /// Slice length (output dimension).
        len: usize,
    },
    /// An injective-modulo-collisions mix `ℝ^d → ℝ`: hashes the bit
    /// pattern of the input to a **36-bit** integer represented exactly
    /// in `f64`. 36 bits (not more) so that *sums* of up to 2¹⁷ hash
    /// values stay below 2⁵³ and are therefore exact in `f64` — sum
    /// aggregation of hashes is the GIN-style multiset fingerprint the
    /// WL simulations rely on (experiments E4, E9). Single-channel
    /// collisions are made harmless by always using two independent
    /// seeds side by side (see `wl_sim::hash2`); experiments are
    /// deterministic, so a collision would fail loudly, not silently.
    Hash {
        /// Seed, so independent hash layers are independent functions.
        seed: u64,
    },
}

impl Func {
    /// Output dimension for the given input (concatenated) dimension.
    ///
    /// Returns `None` when the function cannot accept `d_in`.
    pub fn out_dim(&self, d_in: usize) -> Option<usize> {
        match self {
            Func::Linear { weights, bias } => {
                (weights.rows() == d_in && weights.cols() == bias.len()).then_some(weights.cols())
            }
            Func::Act(_) => Some(d_in),
            Func::Concat => Some(d_in),
            Func::Add { arity, dim } | Func::Mul { arity, dim } => {
                (arity * dim == d_in && *arity >= 1).then_some(*dim)
            }
            Func::Scale(_) => Some(d_in),
            Func::Proj { start, len } => (start + len <= d_in).then_some(*len),
            Func::Hash { .. } => (d_in >= 1).then_some(1),
        }
    }

    /// Applies the function to the concatenated input `x`, writing
    /// `out_dim` values into `out`.
    pub fn apply(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        match self {
            Func::Linear { weights, bias } => {
                debug_assert_eq!(x.len(), weights.rows());
                out.extend_from_slice(bias);
                for (i, &xi) in x.iter().enumerate() {
                    if xi == 0.0 {
                        continue;
                    }
                    for (o, &w) in out.iter_mut().zip(weights.row(i)) {
                        *o += xi * w;
                    }
                }
            }
            Func::Act(a) => out.extend(x.iter().map(|&v| a.apply(v))),
            Func::Concat => out.extend_from_slice(x),
            Func::Add { arity, dim } => {
                out.resize(*dim, 0.0);
                for a in 0..*arity {
                    for j in 0..*dim {
                        out[j] += x[a * dim + j];
                    }
                }
            }
            Func::Mul { arity, dim } => {
                out.resize(*dim, 1.0);
                for a in 0..*arity {
                    for j in 0..*dim {
                        out[j] *= x[a * dim + j];
                    }
                }
            }
            Func::Scale(s) => out.extend(x.iter().map(|&v| s * v)),
            Func::Proj { start, len } => out.extend_from_slice(&x[*start..*start + *len]),
            Func::Hash { seed } => {
                // FNV-style mix over the bit patterns; fold to 36 bits so
                // sums of up to 2^17 hashes remain exact integers in f64.
                let mut h = 0xcbf29ce484222325u64 ^ seed.wrapping_mul(0x9e3779b97f4a7c15);
                for &v in x {
                    h ^= v.to_bits();
                    h = h.wrapping_mul(0x100000001b3);
                    h ^= h >> 29;
                }
                h = h.wrapping_mul(0x9e3779b97f4a7c15);
                h ^= h >> 32;
                out.push((h & ((1u64 << 36) - 1)) as f64);
            }
        }
    }

    /// Short name for pretty-printing.
    pub fn name(&self) -> String {
        match self {
            Func::Linear { .. } => "linear".into(),
            Func::Act(a) => a.name().into(),
            Func::Concat => "concat".into(),
            Func::Add { .. } => "add".into(),
            Func::Mul { .. } => "mul".into(),
            Func::Scale(s) => format!("scale[{s}]"),
            Func::Proj { start, len } => format!("proj[{start},{len}]"),
            Func::Hash { seed } => format!("hash[{seed}]"),
        }
    }
}

/// An aggregation function θ ∈ Θ over bags of vectors (slide 45).
///
/// The empty bag maps to the zero vector for every aggregator (the
/// conventional choice in the GNN literature; documented behaviour for
/// isolated vertices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Agg {
    /// Summation — the aggregator that attains WL power (slide 52).
    Sum,
    /// Arithmetic mean.
    Mean,
    /// Coordinatewise maximum.
    Max,
    /// Coordinatewise minimum.
    Min,
}

impl Agg {
    /// Aggregation state for incremental accumulation.
    pub fn init(&self, dim: usize) -> AggState {
        AggState { agg: *self, acc: vec![0.0; dim], count: 0 }
    }

    /// Name for pretty-printing / parsing.
    pub fn name(&self) -> &'static str {
        match self {
            Agg::Sum => "sum",
            Agg::Mean => "mean",
            Agg::Max => "max",
            Agg::Min => "min",
        }
    }
}

/// Incremental aggregation accumulator.
#[derive(Debug, Clone)]
pub struct AggState {
    agg: Agg,
    acc: Vec<f64>,
    count: usize,
}

impl AggState {
    /// Feeds one bag element.
    pub fn push(&mut self, x: &[f64]) {
        debug_assert_eq!(x.len(), self.acc.len());
        match self.agg {
            Agg::Sum | Agg::Mean => {
                for (a, &v) in self.acc.iter_mut().zip(x) {
                    *a += v;
                }
            }
            Agg::Max => {
                if self.count == 0 {
                    self.acc.copy_from_slice(x);
                } else {
                    for (a, &v) in self.acc.iter_mut().zip(x) {
                        *a = a.max(v);
                    }
                }
            }
            Agg::Min => {
                if self.count == 0 {
                    self.acc.copy_from_slice(x);
                } else {
                    for (a, &v) in self.acc.iter_mut().zip(x) {
                        *a = a.min(v);
                    }
                }
            }
        }
        self.count += 1;
    }

    /// Finalizes the aggregate (empty bag ⇒ zero vector).
    pub fn finish(mut self) -> Vec<f64> {
        if self.count == 0 {
            return self.acc; // zeros
        }
        if self.agg == Agg::Mean {
            let c = self.count as f64;
            for a in &mut self.acc {
                *a /= c;
            }
        }
        self.acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(f: &Func, x: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        f.apply(x, &mut out);
        out
    }

    #[test]
    fn linear_applies_affine_map() {
        let f = Func::Linear {
            weights: Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]),
            bias: vec![10.0, 20.0],
        };
        assert_eq!(run(&f, &[3.0, 4.0]), vec![13.0, 28.0]);
        assert_eq!(f.out_dim(2), Some(2));
        assert_eq!(f.out_dim(3), None);
    }

    #[test]
    fn act_and_scale() {
        assert_eq!(run(&Func::Act(Activation::ReLU), &[-1.0, 2.0]), vec![0.0, 2.0]);
        assert_eq!(run(&Func::Scale(0.5), &[4.0]), vec![2.0]);
    }

    #[test]
    fn add_mul_arity() {
        let add = Func::Add { arity: 2, dim: 2 };
        assert_eq!(run(&add, &[1.0, 2.0, 10.0, 20.0]), vec![11.0, 22.0]);
        let mul = Func::Mul { arity: 3, dim: 1 };
        assert_eq!(run(&mul, &[2.0, 3.0, 4.0]), vec![24.0]);
        assert_eq!(add.out_dim(4), Some(2));
        assert_eq!(add.out_dim(5), None);
    }

    #[test]
    fn proj_slices() {
        let p = Func::Proj { start: 1, len: 2 };
        assert_eq!(run(&p, &[1.0, 2.0, 3.0, 4.0]), vec![2.0, 3.0]);
        assert_eq!(p.out_dim(2), None);
    }

    #[test]
    fn hash_is_deterministic_integer_and_seed_sensitive() {
        let h1 = Func::Hash { seed: 1 };
        let h2 = Func::Hash { seed: 2 };
        let a = run(&h1, &[1.0, 2.0]);
        assert_eq!(a, run(&h1, &[1.0, 2.0]));
        assert_ne!(a, run(&h2, &[1.0, 2.0]));
        assert_ne!(a, run(&h1, &[2.0, 1.0]), "order sensitive");
        assert_eq!(a[0].fract(), 0.0, "hash output must be an exact integer");
    }

    #[test]
    fn aggregations() {
        let bag = [[1.0, 5.0], [3.0, 2.0], [2.0, 2.0]];
        let run_agg = |a: Agg| {
            let mut st = a.init(2);
            for x in &bag {
                st.push(x);
            }
            st.finish()
        };
        assert_eq!(run_agg(Agg::Sum), vec![6.0, 9.0]);
        assert_eq!(run_agg(Agg::Mean), vec![2.0, 3.0]);
        assert_eq!(run_agg(Agg::Max), vec![3.0, 5.0]);
        assert_eq!(run_agg(Agg::Min), vec![1.0, 2.0]);
    }

    #[test]
    fn empty_bag_is_zero() {
        for a in [Agg::Sum, Agg::Mean, Agg::Max, Agg::Min] {
            assert_eq!(a.init(3).finish(), vec![0.0; 3]);
        }
    }
}
