//! Random expression generators — the falsification side of the
//! separation-power theorems (experiments E3, E9, E11).
//!
//! The upper-bound directions of the paper's theorems quantify over
//! *every* expression of a fragment ("for any Ω and Θ", slide 51).
//! Empirically we sample many random well-typed expressions and check
//! that none separates a WL-equivalent pair — a property-based
//! falsification harness in the spirit of proptest, kept deterministic
//! by explicit seeds.

use gel_tensor::{Activation, Matrix};
use rand::Rng;

use crate::ast::{build, Expr};
use crate::func::{Agg, Func};
use crate::table::Var;

/// Configuration for random expression sampling.
#[derive(Debug, Clone)]
pub struct RandomExprConfig {
    /// Label dimension of the graphs the expression will run on.
    pub label_dim: usize,
    /// Maximum nesting depth.
    pub max_depth: usize,
    /// Maximum width of intermediate dimensions.
    pub max_dim: usize,
    /// Aggregators to sample from.
    pub aggregators: Vec<Agg>,
}

impl Default for RandomExprConfig {
    fn default() -> Self {
        Self {
            label_dim: 1,
            max_depth: 4,
            max_dim: 4,
            aggregators: vec![Agg::Sum, Agg::Mean, Agg::Max],
        }
    }
}

fn random_linear(d_in: usize, d_out: usize, rng: &mut impl Rng) -> Func {
    let a = (6.0 / (d_in + d_out) as f64).sqrt();
    Func::Linear {
        weights: Matrix::from_fn(d_in, d_out, |_, _| rng.gen_range(-a..=a)),
        bias: (0..d_out).map(|_| rng.gen_range(-a..=a)).collect(),
    }
}

fn random_activation(rng: &mut impl Rng) -> Activation {
    match rng.gen_range(0..4) {
        0 => Activation::ReLU,
        1 => Activation::Sigmoid,
        2 => Activation::Tanh,
        _ => Activation::Identity,
    }
}

/// Samples a random `MPNN(Ω,Θ)` *vertex* expression with free variable
/// `x1` (invariant by construction, slide 47's guarded shape).
pub fn random_mpnn_vertex(cfg: &RandomExprConfig, rng: &mut impl Rng) -> Expr {
    random_mpnn_at(cfg, 1, cfg.max_depth, rng).0
}

/// Samples a random closed `MPNN(Ω,Θ)` *graph* expression
/// (vertex expression + global aggregation + readout).
pub fn random_mpnn_graph(cfg: &RandomExprConfig, rng: &mut impl Rng) -> Expr {
    let (vertex, dim) = random_mpnn_at(cfg, 1, cfg.max_depth, rng);
    let agg = cfg.aggregators[rng.gen_range(0..cfg.aggregators.len())];
    let pooled = build::global_agg(agg, 1, vertex);
    let d_out = rng.gen_range(1..=cfg.max_dim);
    build::apply(
        Func::Act(random_activation(rng)),
        vec![build::apply(random_linear(dim, d_out, rng), vec![pooled])],
    )
}

/// Returns a random MPNN expression anchored at `var` together with its
/// dimension.
fn random_mpnn_at(
    cfg: &RandomExprConfig,
    var: Var,
    depth: usize,
    rng: &mut impl Rng,
) -> (Expr, usize) {
    if depth == 0 || rng.gen_bool(0.2) {
        return (build::lab_vec(var, cfg.label_dim), cfg.label_dim);
    }
    match rng.gen_range(0..4) {
        0 => {
            // Function application on one subexpression.
            let (inner, d) = random_mpnn_at(cfg, var, depth - 1, rng);
            let d_out = rng.gen_range(1..=cfg.max_dim);
            let lin = build::apply(random_linear(d, d_out, rng), vec![inner]);
            (build::apply(Func::Act(random_activation(rng)), vec![lin]), d_out)
        }
        1 => {
            // Concat of two subexpressions.
            let (a, da) = random_mpnn_at(cfg, var, depth - 1, rng);
            let (b, db) = random_mpnn_at(cfg, var, depth - 1, rng);
            (build::apply(Func::Concat, vec![a, b]), da + db)
        }
        2 => {
            // Pointwise product (dimension-matched by a linear map).
            let (a, da) = random_mpnn_at(cfg, var, depth - 1, rng);
            let (b, db) = random_mpnn_at(cfg, var, depth - 1, rng);
            let d = rng.gen_range(1..=cfg.max_dim);
            let pa = build::apply(random_linear(da, d, rng), vec![a]);
            let pb = build::apply(random_linear(db, d, rng), vec![b]);
            (build::apply(Func::Mul { arity: 2, dim: d }, vec![pa, pb]), d)
        }
        _ => {
            // Neighbourhood aggregation: body anchored at the other var.
            let other: Var = if var == 1 { 2 } else { 1 };
            let (body, d) = random_mpnn_at(cfg, other, depth - 1, rng);
            let agg = cfg.aggregators[rng.gen_range(0..cfg.aggregators.len())];
            (build::nbr_agg(agg, var, other, body), d)
        }
    }
}

/// Samples a random closed `GEL_k(Ω,Θ)` graph expression using up to
/// `k` variables: a random polynomial over edge/equality/label atoms,
/// aggregated away variable by variable.
pub fn random_gel_graph(cfg: &RandomExprConfig, k: usize, rng: &mut impl Rng) -> Expr {
    assert!((2..=6).contains(&k), "supported widths: 2..=6");
    let (body, dim) = random_gel_body(cfg, k, cfg.max_depth, rng);
    // Aggregate all variables away (one at a time, random aggregator).
    let mut cur = body;
    let mut cur_dim = dim;
    for v in 1..=k as Var {
        if cur.free_vars().contains(&v) {
            let agg = cfg.aggregators[rng.gen_range(0..cfg.aggregators.len())];
            cur = build::agg_over(agg, vec![v], cur, None);
        }
    }
    let d_out = rng.gen_range(1..=cfg.max_dim);
    cur = build::apply(random_linear(cur_dim, d_out, rng), vec![cur]);
    cur_dim = d_out;
    let _ = cur_dim;
    cur
}

fn random_gel_body(
    cfg: &RandomExprConfig,
    k: usize,
    depth: usize,
    rng: &mut impl Rng,
) -> (Expr, usize) {
    if depth == 0 || rng.gen_bool(0.25) {
        // Random atom.
        return match rng.gen_range(0..3) {
            0 => {
                let v = rng.gen_range(1..=k) as Var;
                (build::lab_vec(v, cfg.label_dim), cfg.label_dim)
            }
            1 => {
                let a = rng.gen_range(1..=k) as Var;
                let mut b = rng.gen_range(1..=k) as Var;
                if a == b {
                    b = if a == k as Var { 1 } else { a + 1 };
                }
                (build::edge(a, b), 1)
            }
            _ => {
                let a = rng.gen_range(1..=k) as Var;
                let mut b = rng.gen_range(1..=k) as Var;
                if a == b {
                    b = if a == k as Var { 1 } else { a + 1 };
                }
                (if rng.gen_bool(0.5) { build::eq(a, b) } else { build::ne(a, b) }, 1)
            }
        };
    }
    match rng.gen_range(0..4) {
        0 => {
            let (inner, d) = random_gel_body(cfg, k, depth - 1, rng);
            let d_out = rng.gen_range(1..=cfg.max_dim);
            let lin = build::apply(random_linear(d, d_out, rng), vec![inner]);
            (build::apply(Func::Act(random_activation(rng)), vec![lin]), d_out)
        }
        1 => {
            let (a, da) = random_gel_body(cfg, k, depth - 1, rng);
            let (b, db) = random_gel_body(cfg, k, depth - 1, rng);
            (build::apply(Func::Concat, vec![a, b]), da + db)
        }
        2 => {
            let (a, da) = random_gel_body(cfg, k, depth - 1, rng);
            let (b, db) = random_gel_body(cfg, k, depth - 1, rng);
            let d = rng.gen_range(1..=cfg.max_dim);
            let pa = build::apply(random_linear(da, d, rng), vec![a]);
            let pb = build::apply(random_linear(db, d, rng), vec![b]);
            (build::apply(Func::Mul { arity: 2, dim: d }, vec![pa, pb]), d)
        }
        _ => {
            // Aggregate one variable away, guarded by a random guard.
            let (body, d) = random_gel_body(cfg, k, depth - 1, rng);
            let fv: Vec<Var> = body.free_vars().into_iter().collect();
            if fv.len() < 2 {
                return (body, d);
            }
            let y = fv[rng.gen_range(0..fv.len())];
            let anchor = *fv.iter().find(|&&v| v != y).unwrap();
            let agg = cfg.aggregators[rng.gen_range(0..cfg.aggregators.len())];
            let guard = if rng.gen_bool(0.7) { Some(build::edge(anchor, y)) } else { None };
            (build::agg_over(agg, vec![y], body, guard), d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, Fragment};
    use crate::eval::eval;
    use gel_graph::families::cycle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_mpnn_is_well_typed_and_in_fragment() {
        let cfg = RandomExprConfig::default();
        let mut rng = StdRng::seed_from_u64(100);
        for _ in 0..50 {
            let e = random_mpnn_vertex(&cfg, &mut rng);
            e.validate().expect("generated expression must type-check");
            assert_eq!(analyze(&e).fragment, Fragment::Mpnn);
            let fv: Vec<Var> = e.free_vars().into_iter().collect();
            assert_eq!(fv, vec![1]);
        }
    }

    #[test]
    fn random_mpnn_graph_is_closed() {
        let cfg = RandomExprConfig::default();
        let mut rng = StdRng::seed_from_u64(200);
        for _ in 0..30 {
            let e = random_mpnn_graph(&cfg, &mut rng);
            e.validate().unwrap();
            assert!(e.free_vars().is_empty());
            // And it evaluates without panicking.
            let _ = eval(&e, &cycle(5));
        }
    }

    #[test]
    fn random_gel_respects_width() {
        let cfg = RandomExprConfig::default();
        let mut rng = StdRng::seed_from_u64(300);
        for k in 2..=3usize {
            for _ in 0..30 {
                let e = random_gel_graph(&cfg, k, &mut rng);
                e.validate().unwrap();
                assert!(e.all_vars().len() <= k, "width exceeded");
                assert!(e.free_vars().is_empty());
                let _ = eval(&e, &cycle(4));
            }
        }
    }

    #[test]
    fn random_expressions_are_invariant() {
        use gel_graph::random::{erdos_renyi, random_permutation};
        let cfg = RandomExprConfig::default();
        let mut rng = StdRng::seed_from_u64(400);
        let g = erdos_renyi(8, 0.4, &mut StdRng::seed_from_u64(12));
        for _ in 0..20 {
            let e = random_mpnn_graph(&cfg, &mut rng);
            let h = g.permute(&random_permutation(8, &mut rng));
            let a = eval(&e, &g);
            let b = eval(&e, &h);
            assert!(a.approx_eq(&b, 1e-7), "invariance violated by {e}");
        }
    }
}
