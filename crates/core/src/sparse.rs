//! Sparse embedding tables: sorted coordinate lists and the sorted
//! merge-join / contraction kernels behind the compiled evaluator's
//! sparse execution paths (`crate::plan`).
//!
//! A [`CoordList`] stores the nonzero cells of a table over variables
//! `vars` (strictly ascending, as everywhere) as flat row-major cell
//! ids — exactly the indices of [`crate::table::EmbeddingTable`]'s
//! dense layout, so a coordinate list is the dense slab with the zero
//! cells elided and the survivors kept in the same (lexicographic)
//! order. Keeping the dense order is load-bearing: the aggregation
//! kernels in `plan.rs` replay the dense fold order over the stored
//! entries, which is what makes sparse and dense evaluation
//! bit-identical rather than merely close.
//!
//! **Invariants** (checked by [`CoordList::is_strictly_sorted`] and
//! property-tested below): coordinates strictly ascending — sorted and
//! duplicate-free. Values may contain explicit zeros (a sparse product
//! with a zero dense operand stores the zero); "nnz" in counters means
//! entry count.
//!
//! [`join_multiply`] and [`contract_sum`] are the two moves of the
//! FAQ-style variable elimination pass (scalar factors only): a sorted
//! merge-join on the shared variables in time
//! `O((|A| + |B|)·log + |A ⋈ B|·log)` and a sum-contraction of one
//! variable. Both are restricted by `plan.rs` to integer-valued
//! indicator factors, where reassociating the sum is exact — see
//! DESIGN.md §6.

use crate::table::Var;

/// Integer power `n^e` with overflow panic (table sizes are checked the
/// same way in `plan.rs`).
#[inline]
fn npow(n: usize, e: usize) -> usize {
    n.checked_pow(e as u32).expect("sparse table too large")
}

/// A sparse table over some variable set: strictly ascending flat cell
/// ids plus `dim` values per entry, in the same order.
#[derive(Debug, Clone, Default)]
pub struct CoordList {
    dim: usize,
    coords: Vec<usize>,
    values: Vec<f64>,
}

impl CoordList {
    /// An empty list with the given cell width.
    pub fn new(dim: usize) -> Self {
        Self { dim, coords: Vec::new(), values: Vec::new() }
    }

    /// Clears the list and resets its cell width, keeping capacity.
    pub fn reset(&mut self, dim: usize) {
        self.dim = dim;
        self.coords.clear();
        self.values.clear();
    }

    /// An empty list adopting recycled buffers (their contents are
    /// discarded, their capacity kept) — how the evaluation engine's
    /// pools hand storage to plan nodes.
    pub fn with_buffers(dim: usize, mut coords: Vec<usize>, mut values: Vec<f64>) -> Self {
        coords.clear();
        values.clear();
        Self { dim, coords, values }
    }

    /// Dismantles the list into its buffers for pool recycling.
    pub fn into_parts(self) -> (Vec<usize>, Vec<f64>) {
        (self.coords, self.values)
    }

    /// Cell width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// Whether the list has no entries.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// The stored cell ids.
    pub fn coords(&self) -> &[usize] {
        &self.coords
    }

    /// The stored values (`len() * dim()` floats).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable view of the stored values (coordinates stay fixed — for
    /// in-place scaling, e.g. the `n^free_over` multiplier).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Appends an entry. Callers may push out of order as long as they
    /// finish with [`Self::sort_entries`].
    pub fn push(&mut self, coord: usize, value: &[f64]) {
        debug_assert_eq!(value.len(), self.dim);
        self.coords.push(coord);
        self.values.extend_from_slice(value);
    }

    /// Appends a scalar entry (`dim == 1`).
    pub fn push1(&mut self, coord: usize, value: f64) {
        debug_assert_eq!(self.dim, 1);
        self.coords.push(coord);
        self.values.push(value);
    }

    /// The value row of entry `i`.
    pub fn value(&self, i: usize) -> &[f64] {
        &self.values[i * self.dim..(i + 1) * self.dim]
    }

    /// Binary-searches for `coord`, returning its value row.
    pub fn get(&self, coord: usize) -> Option<&[f64]> {
        self.coords.binary_search(&coord).ok().map(|i| self.value(i))
    }

    /// [`Self::get`] for scalar lists, with 0.0 for absent cells.
    pub fn probe1(&self, coord: usize) -> f64 {
        debug_assert_eq!(self.dim, 1);
        match self.coords.binary_search(&coord) {
            Ok(i) => self.values[i],
            Err(_) => 0.0,
        }
    }

    /// Clones `src`'s entries into `self`, reusing `self`'s buffers —
    /// how the elimination kernel seeds its factor arena without
    /// touching the allocator once warmed.
    pub fn copy_from_list(&mut self, src: &CoordList) {
        self.dim = src.dim;
        self.coords.clear();
        self.coords.extend_from_slice(&src.coords);
        self.values.clear();
        self.values.extend_from_slice(&src.values);
    }

    /// The representation invariant: coordinates strictly ascending
    /// (sorted, duplicate-free) and one value row per coordinate.
    pub fn is_strictly_sorted(&self) -> bool {
        self.values.len() == self.coords.len() * self.dim
            && self.coords.windows(2).all(|w| w[0] < w[1])
    }

    /// Restores the sorted invariant after out-of-order pushes
    /// (coordinates must be distinct). Scalar lists sort in place;
    /// wider lists gather their value rows through `scratch`.
    pub fn sort_entries(&mut self, scratch: &mut JoinScratch) {
        if self.coords.windows(2).all(|w| w[0] < w[1]) {
            return;
        }
        if self.dim == 1 {
            scratch.pairs.clear();
            scratch
                .pairs
                .extend(self.coords.iter().zip(&self.values).map(|(&c, &v)| (c, v.to_bits())));
            scratch.pairs.sort_unstable_by_key(|&(c, _)| c);
            for (i, &(c, bits)) in scratch.pairs.iter().enumerate() {
                self.coords[i] = c;
                self.values[i] = f64::from_bits(bits);
            }
        } else {
            scratch.keys.clear();
            scratch.keys.extend(self.coords.iter().map(|&c| (c, 0u32)));
            for (i, k) in scratch.keys.iter_mut().enumerate() {
                k.1 = i as u32;
            }
            scratch.keys.sort_unstable_by_key(|&(c, _)| c);
            scratch.vals.clear();
            scratch.vals.extend_from_slice(&self.values);
            for (i, &(c, src)) in scratch.keys.iter().enumerate() {
                self.coords[i] = c;
                let s = src as usize * self.dim;
                self.values[i * self.dim..(i + 1) * self.dim]
                    .copy_from_slice(&scratch.vals[s..s + self.dim]);
            }
        }
        debug_assert!(self.is_strictly_sorted());
    }
}

/// Reusable buffers for [`join_multiply`] / [`contract_sum`] /
/// [`CoordList::sort_entries`] — owned by the engine's scratch so the
/// warmed sparse path stays allocation-free.
#[derive(Debug, Default)]
pub struct JoinScratch {
    /// `(key, original index)` pairs for re-keying one operand.
    keys: Vec<(usize, u32)>,
    /// Same, for the second operand of a join.
    keys_b: Vec<(usize, u32)>,
    /// `(coord, value bits)` pairs for scalar in-place sorts.
    pairs: Vec<(usize, u64)>,
    /// Gather buffer for wide value rows.
    vals: Vec<f64>,
    /// Per-run `(out contribution, value)` cache of the second operand.
    run_b: Vec<(usize, f64)>,
    /// Variable-block partitions of a join (shared / a-only / b-only).
    vars_shared: Vec<Var>,
    vars_a: Vec<Var>,
    vars_b: Vec<Var>,
    /// Re-key strides of each operand.
    strides_a: Vec<usize>,
    strides_b: Vec<usize>,
    /// Output-coordinate contribution strides per block digit.
    out_shared: Vec<usize>,
    out_a: Vec<usize>,
    out_b: Vec<usize>,
    /// Worst-case-optimal join state ([`join_multiway`]): per-factor
    /// per-trie-level digit strides …
    wco_strides: Vec<Vec<usize>>,
    /// … the `(factor, trie level)` pairs active at each order depth …
    wco_active: Vec<Vec<(u32, u32)>>,
    /// … per-factor stacks of trie ranges (one frame per bound level) …
    wco_ranges: Vec<Vec<(usize, usize)>>,
    /// … per-depth leapfrog iterator blocks (reused across the
    /// recursion so a `descend` call never zero-initialises scratch) …
    wco_iters: Vec<Vec<LfIter>>,
    /// … the key radix of each factor (`n.next_power_of_two()` on the
    /// shift/mask fast path, `n` on the division fallback) …
    wco_radix: Vec<usize>,
    /// … and the output-coordinate stride of each free-prefix depth.
    wco_out_strides: Vec<usize>,
}

/// One factor's leapfrog iterator at one join depth: a cursor into the
/// factor's trie-ordered coordinate array, restricted to the subtree
/// `cur..hi` selected by the already-bound prefix. `base` is the packed
/// key of that prefix, so the entries binding vertex `v` at this level
/// occupy the half-open raw-key range `[base + v*below, base +
/// (v+1)*below)` — every seek is a `partition_point` over plain
/// `usize` keys with no division in the probe. `dig` caches the vertex
/// bound by the entry at `cur` (one division per seek, not per probe).
#[derive(Debug, Clone, Copy)]
struct LfIter {
    /// Factor index.
    f: u32,
    /// Digit shift of this trie level (shift/mask radix only).
    shift: u32,
    /// Current entry, end of the matched run, and subtree end.
    cur: usize,
    end: usize,
    hi: usize,
    /// Key stride of this trie level (`radix^(q-1-level)`).
    below: usize,
    /// Packed key of the bound prefix (digits above this level).
    base: usize,
    /// Vertex bound by the entry at `cur`.
    dig: usize,
    /// Digit mask (`radix - 1`); zero selects the division fallback.
    mask: usize,
}

impl LfIter {
    /// The vertex bound by raw key `key` at this iterator's level.
    #[inline]
    fn dig_of(&self, key: usize) -> usize {
        if self.mask != 0 {
            (key >> self.shift) & self.mask
        } else {
            (key - self.base) / self.below
        }
    }
}

/// First index in `coords[lo..hi]` whose key is `>= target`, assuming
/// `coords[lo] < target`: exponential probe forward from `lo`, then a
/// binary search of the last doubling window. Leapfrog seeks usually
/// land a handful of entries ahead, so this is `O(log distance)`
/// instead of `O(log (hi - lo))`.
#[inline]
fn gallop(coords: &[usize], lo: usize, hi: usize, target: usize) -> usize {
    debug_assert!(lo < hi && coords[lo] < target);
    let mut step = 1usize;
    let mut base = lo;
    while base + step < hi && coords[base + step] < target {
        base += step;
        step <<= 1;
    }
    let end = (base + step + 1).min(hi);
    base + coords[base..end].partition_point(|&k| k < target)
}

/// Writes the base-`n` digits of `cell`, most significant first.
#[inline]
fn digits_of(mut cell: usize, n: usize, out: &mut [usize]) {
    for d in out.iter_mut().rev() {
        *d = cell % n;
        cell /= n;
    }
    debug_assert_eq!(cell, 0);
}

/// Re-keys the coordinates of `src` into a permuted mixed radix given
/// per-position key strides, as `(key, entry index)` pairs sorted by
/// key. Skips the sort when the remap is the identity (keys already
/// ascend with the coords). The per-entry digit decompose is cheap: the
/// number of positions is bounded by expression arity. Shared with
/// `plan.rs`, whose sparse-guard kernel re-keys guard entries into
/// `(output part, aggregated part)` order the same way.
pub(crate) fn rekey_into(
    src: &CoordList,
    n: usize,
    key_strides: &[usize],
    identity: bool,
    out: &mut Vec<(usize, u32)>,
) {
    out.clear();
    let p = key_strides.len();
    let mut digits = [0usize; 16];
    assert!(p <= digits.len(), "too many variables in sparse join");
    for (i, &c) in src.coords.iter().enumerate() {
        let key = if identity {
            c
        } else {
            digits_of(c, n, &mut digits[..p]);
            digits[..p].iter().zip(key_strides).map(|(d, s)| d * s).sum()
        };
        out.push((key, i as u32));
    }
    if !identity {
        out.sort_unstable();
    }
}

/// Sorted merge-join of two scalar factors: multiplies matching
/// entries on their shared variables and emits the product factor over
/// the variable union, sorted. `out_vars` receives the union.
///
/// Each operand is re-keyed to `(shared vars, own-only vars)` mixed
/// radix (a no-op when the shared variables already lead), runs with
/// equal shared prefixes are matched two-pointer style, and the run
/// product is emitted. Output coordinates are unique — `(shared, a
/// rest, b rest)` determines the cell — so the final
/// [`CoordList::sort_entries`] restores the invariant without any
/// dedup pass.
#[allow(clippy::too_many_arguments)]
pub fn join_multiply(
    a: &CoordList,
    a_vars: &[Var],
    b: &CoordList,
    b_vars: &[Var],
    n: usize,
    s: &mut JoinScratch,
    out: &mut CoordList,
    out_vars: &mut Vec<Var>,
) {
    assert_eq!(a.dim, 1, "join_multiply is scalar");
    assert_eq!(b.dim, 1, "join_multiply is scalar");
    debug_assert!(a_vars.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(b_vars.windows(2).all(|w| w[0] < w[1]));
    out.reset(1);
    out_vars.clear();
    out_vars.extend_from_slice(a_vars);
    out_vars.extend_from_slice(b_vars);
    out_vars.sort_unstable();
    out_vars.dedup();
    if a.is_empty() || b.is_empty() {
        return;
    }

    // Variable blocks and stride tables live in the scratch: the warmed
    // elimination loop re-joins the same shapes without allocating.
    s.vars_shared.clear();
    s.vars_shared.extend(a_vars.iter().copied().filter(|v| b_vars.contains(v)));
    s.vars_a.clear();
    s.vars_a.extend(a_vars.iter().copied().filter(|v| !s.vars_shared.contains(v)));
    s.vars_b.clear();
    s.vars_b.extend(b_vars.iter().copied().filter(|v| !s.vars_shared.contains(v)));
    let (qs, qa, qb) = (s.vars_shared.len(), s.vars_a.len(), s.vars_b.len());
    let (pow_a, pow_b) = (npow(n, qa), npow(n, qb));

    // Key strides: key = (shared digits, own-only digits) mixed radix.
    let a_id = fill_key_strides(a_vars, &s.vars_shared, &s.vars_a, pow_a, n, &mut s.strides_a);
    let b_id = fill_key_strides(b_vars, &s.vars_shared, &s.vars_b, pow_b, n, &mut s.strides_b);
    rekey_into(a, n, &s.strides_a, a_id, &mut s.keys);
    rekey_into(b, n, &s.strides_b, b_id, &mut s.keys_b);

    // Output contribution strides per block digit.
    fill_out_strides(&s.vars_shared, out_vars, n, &mut s.out_shared);
    fill_out_strides(&s.vars_a, out_vars, n, &mut s.out_a);
    fill_out_strides(&s.vars_b, out_vars, n, &mut s.out_b);

    let mut sdig = [0usize; 16];
    let contrib = |rest: usize, q: usize, strides: &[usize], dig: &mut [usize; 16]| -> usize {
        digits_of(rest, n, &mut dig[..q]);
        dig[..q].iter().zip(strides).map(|(d, s)| d * s).sum()
    };

    let (keys_a, keys_b) = (&s.keys, &s.keys_b);
    let (mut i, mut j) = (0usize, 0usize);
    while i < keys_a.len() && j < keys_b.len() {
        let sa = keys_a[i].0 / pow_a;
        let sb = keys_b[j].0 / pow_b;
        if sa < sb {
            i += 1;
            continue;
        }
        if sb < sa {
            j += 1;
            continue;
        }
        let i2 = keys_a[i..].iter().take_while(|&&(k, _)| k / pow_a == sa).count() + i;
        let j2 = keys_b[j..].iter().take_while(|&&(k, _)| k / pow_b == sb).count() + j;
        let c_shared = contrib(sa, qs, &s.out_shared, &mut sdig);
        s.run_b.clear();
        for &(kb, yb) in &keys_b[j..j2] {
            s.run_b.push((contrib(kb % pow_b, qb, &s.out_b, &mut sdig), b.values[yb as usize]));
        }
        for &(kak, xa) in &keys_a[i..i2] {
            let c_a = c_shared + contrib(kak % pow_a, qa, &s.out_a, &mut sdig);
            let va = a.values[xa as usize];
            for &(c_b, vb) in &s.run_b {
                out.push1(c_a + c_b, va * vb);
            }
        }
        i = i2;
        j = j2;
    }
    out.sort_entries(s);
}

/// Fills `out` with the `(shared block, own-only block)` key stride of
/// each variable of `vars`; returns whether the remap is the identity.
fn fill_key_strides(
    vars: &[Var],
    shared: &[Var],
    own: &[Var],
    own_pow: usize,
    n: usize,
    out: &mut Vec<usize>,
) -> bool {
    out.clear();
    let qs = shared.len();
    for v in vars {
        let ks = if let Some(r) = shared.iter().position(|sv| sv == v) {
            npow(n, qs - 1 - r) * own_pow
        } else {
            let r = own.iter().position(|ov| ov == v).expect("var in own block");
            npow(n, own.len() - 1 - r)
        };
        out.push(ks);
    }
    out.iter().enumerate().all(|(i, &ks)| ks == npow(n, vars.len() - 1 - i))
}

/// Fills `out` with the output-coordinate stride of each variable of
/// `block` within `out_vars`' row-major layout.
fn fill_out_strides(block: &[Var], out_vars: &[Var], n: usize, out: &mut Vec<usize>) {
    out.clear();
    let p_out = out_vars.len();
    out.extend(
        block.iter().map(|v| npow(n, p_out - 1 - out_vars.iter().position(|o| o == v).unwrap())),
    );
}

/// Factor-count cap of [`join_multiway`], matching its stack-local
/// iterator arrays (expression arity bounds the factor count long
/// before this).
pub const MAX_WCO_FACTORS: usize = 32;

/// Worst-case-optimal multiway join (leapfrog-triejoin style): joins
/// all scalar `factors` at once by intersecting, variable by variable
/// in the shared `order`, the candidate vertices of every factor
/// containing that variable — then sums the per-assignment products
/// over `order[n_free..]` into a scalar output over the free prefix
/// `order[..n_free]` (which must be the output variables in ascending
/// order, so results emerge in dense layout order without a final
/// sort; `n_free == 0` folds everything into coordinate 0).
///
/// Each factor is viewed as a *trie*: its sorted coordinate array,
/// re-keyed in place so the mixed-radix digits follow the factor's
/// variables in global-order position ("trie order" — a no-op for
/// factors whose variables already ascend with the order). Level `l`
/// of the trie is then digit `l` of the key, and a subtree is a
/// contiguous key range, so the per-variable intersection is a
/// leapfrog over `partition_point` range splits — no hashing, no
/// materialized intermediates. Total work is bounded by the AGM
/// fractional-cover bound of the factor hypergraph (Ngo–Porat–Ré–Rudra;
/// `gel_graph::elim::agm_cover_log_bound` computes the planning-side
/// estimate), which for cyclic joins is asymptotically below any
/// binary join plan.
///
/// Requirements: scalar factors (`dim == 1`), every variable of every
/// factor present in `order`, every `order` variable present in at
/// least one factor, at most [`MAX_WCO_FACTORS`] factors. All state
/// lives in `s`, so the warmed path allocates nothing.
///
/// Determinism: assignments are enumerated in lexicographic `order`;
/// the callers (`plan.rs`) restrict the kernel to integer-valued
/// indicator factors, where re-associating the eliminated sums is
/// exact — the same contract as [`join_multiply`] / [`contract_sum`].
///
/// Returns the number of leapfrog seeks performed (an obs metric).
pub fn join_multiway(
    factors: &mut [CoordList],
    factor_vars: &[Vec<Var>],
    order: &[Var],
    n_free: usize,
    n: usize,
    s: &mut JoinScratch,
    out: &mut CoordList,
) -> u64 {
    let nf = factors.len();
    assert_eq!(factor_vars.len(), nf, "one variable list per factor");
    assert!(nf <= MAX_WCO_FACTORS, "too many factors in multiway join");
    assert!(n_free <= order.len(), "free prefix within order");
    debug_assert!(order[..n_free].windows(2).all(|w| w[0] < w[1]), "free prefix ascending");
    out.reset(1);
    if nf == 0 {
        return 0;
    }

    // Per-depth active lists and per-factor range stacks.
    while s.wco_active.len() < order.len() {
        s.wco_active.push(Vec::new());
    }
    for a in s.wco_active[..order.len()].iter_mut() {
        a.clear();
    }
    while s.wco_strides.len() < nf {
        s.wco_strides.push(Vec::new());
    }
    while s.wco_ranges.len() < nf {
        s.wco_ranges.push(Vec::new());
    }
    while s.wco_iters.len() < order.len() {
        s.wco_iters.push(Vec::new());
    }

    // Digit radix per factor: rounding `n` up to a power of two makes
    // every hot-loop digit extraction a shift/mask instead of a
    // div/mod. When `n` is itself a power of two (the common bench and
    // partition sizes) the packed keys are numerically unchanged, so
    // identity-order factors skip the repack entirely; otherwise the
    // repack rides the same decode pass as the trie re-key. Factors
    // whose widened key would overflow 63 bits keep base-`n` keys and
    // the division path.
    let nb = n.next_power_of_two();
    let shift = nb.trailing_zeros() as usize;
    s.wco_radix.clear();

    let mut empty = false;
    for (f, vars) in factor_vars.iter().enumerate() {
        assert_eq!(factors[f].dim, 1, "join_multiway is scalar");
        debug_assert!(vars.windows(2).all(|w| w[0] < w[1]));
        let q = vars.len();
        assert!(q <= 16, "too many variables in sparse join");
        let radix = if q * shift <= 63 { nb } else { n };
        s.wco_radix.push(radix);
        // Global order position of each variable, and its trie level
        // (rank of that position among the factor's own variables).
        let mut pos = [0usize; 16];
        for (i, v) in vars.iter().enumerate() {
            pos[i] = order.iter().position(|o| o == v).expect("factor variable in order");
        }
        let mut kstr = [0usize; 16];
        let mut identity = true;
        for i in 0..q {
            let level = (0..q).filter(|&j| pos[j] < pos[i]).count();
            if level != i {
                identity = false;
            }
            kstr[i] = npow(radix, q - 1 - level);
            s.wco_active[pos[i]].push((f as u32, level as u32));
        }
        // Trie view: re-key the sorted coordinates to trie order (and
        // into the widened radix when it differs from `n`).
        if !identity || radix != n {
            let mut digits = [0usize; 16];
            for c in factors[f].coords.iter_mut() {
                digits_of(*c, n, &mut digits[..q]);
                *c = digits[..q].iter().zip(&kstr[..q]).map(|(d, st)| d * st).sum();
            }
            if !identity {
                factors[f].sort_entries(s);
            }
            debug_assert!(factors[f].is_strictly_sorted());
        }
        let st = &mut s.wco_strides[f];
        st.clear();
        st.extend((0..q).map(|l| npow(radix, q - 1 - l)));
        let r = &mut s.wco_ranges[f];
        r.clear();
        r.push((0, factors[f].len()));
        empty |= factors[f].is_empty();
    }
    if empty {
        return 0;
    }
    assert!(
        s.wco_active[..order.len()].iter().all(|a| !a.is_empty()),
        "every order variable must appear in a factor"
    );
    s.wco_out_strides.clear();
    s.wco_out_strides.extend((0..n_free).map(|d| npow(n, n_free - 1 - d)));

    let mut ctx = WcoCtx {
        factors,
        strides: &s.wco_strides,
        radix: &s.wco_radix,
        active: &s.wco_active,
        out_strides: &s.wco_out_strides,
        ranges: &mut s.wco_ranges,
        iters: &mut s.wco_iters,
        out,
        order_len: order.len(),
        n_free,
        nf,
        seeks: 0,
    };
    ctx.descend(0, 0);
    let seeks = ctx.seeks;
    debug_assert!(out.is_strictly_sorted());
    seeks
}

/// Recursion state of [`join_multiway`]. Shared-reference fields are
/// copied out of `self` before recursing, so only `ranges`/`out`/
/// `seeks` are touched through `&mut self`.
struct WcoCtx<'a> {
    factors: &'a [CoordList],
    strides: &'a [Vec<usize>],
    radix: &'a [usize],
    active: &'a [Vec<(u32, u32)>],
    out_strides: &'a [usize],
    ranges: &'a mut [Vec<(usize, usize)>],
    iters: &'a mut [Vec<LfIter>],
    out: &'a mut CoordList,
    order_len: usize,
    n_free: usize,
    nf: usize,
    seeks: u64,
}

impl WcoCtx<'_> {
    fn descend(&mut self, d: usize, out_coord: usize) {
        if d == self.order_len {
            // Full assignment: every factor's range is one entry.
            let mut prod = 1.0;
            for f in 0..self.nf {
                let &(lo, hi) = self.ranges[f].last().expect("range per bound level");
                debug_assert_eq!(hi, lo + 1, "full trie key is unique");
                prod *= self.factors[f].values[lo];
            }
            // The free prefix is enumerated lexicographically, so the
            // output coordinate is non-decreasing: accumulate into the
            // last entry or append.
            if self.out.coords.last() == Some(&out_coord) {
                *self.out.values.last_mut().expect("entry exists") += prod;
            } else {
                debug_assert!(self.out.coords.last().is_none_or(|&c| c < out_coord));
                self.out.push1(out_coord, prod);
            }
            return;
        }
        let factors = self.factors;
        let free_stride = if d < self.n_free { self.out_strides[d] } else { 0 };

        // Leapfrog iterators over the active factors' current ranges.
        // The per-depth block is taken out of the scratch for the
        // duration of this call (deeper recursion uses deeper blocks)
        // and restored on every exit path.
        let mut its = std::mem::take(&mut self.iters[d]);
        its.clear();
        for &(f, l) in &self.active[d] {
            let fu = f as usize;
            let &(lo, hi) = self.ranges[fu].last().expect("range per bound level");
            if lo == hi {
                self.iters[d] = its;
                return;
            }
            let below = self.strides[fu][l as usize];
            let radix = self.radix[fu];
            let key = factors[fu].coords[lo];
            let (base, shift, mask) = if radix.is_power_of_two() {
                let shift = below.trailing_zeros();
                (key & !(below * radix - 1), shift, radix - 1)
            } else {
                (key - key % (below * radix), 0, 0)
            };
            let mut it = LfIter { f, shift, cur: lo, end: lo, hi, below, base, dig: 0, mask };
            it.dig = it.dig_of(key);
            its.push(it);
        }
        'outer: loop {
            // The largest current candidate vertex across factors.
            let mut vmax = 0usize;
            for it in its.iter() {
                if it.dig > vmax {
                    vmax = it.dig;
                }
            }
            // Leapfrog everyone up to it; an overshoot raises the bar
            // and restarts the pass. Seek targets are raw packed keys
            // (`base + v*below`), so the gallop compares plain
            // integers; the cached `dig` recompute per landed seek is a
            // shift/mask (or one division on the wide-key fallback).
            let mut matched = true;
            for it in its.iter_mut() {
                if it.dig < vmax {
                    let coords = &factors[it.f as usize].coords;
                    let target = it.base + vmax * it.below;
                    it.cur = gallop(coords, it.cur, it.hi, target);
                    self.seeks += 1;
                    if it.cur == it.hi {
                        break 'outer;
                    }
                    it.dig = it.dig_of(coords[it.cur]);
                    if it.dig > vmax {
                        matched = false;
                    }
                }
            }
            if !matched {
                continue;
            }
            // All factors agree on vertex `vmax`: bind it, recurse into
            // the matching subtries, then advance past them.
            for it in its.iter_mut() {
                let coords = &factors[it.f as usize].coords;
                let stop = it.base + (vmax + 1) * it.below;
                it.end = gallop(coords, it.cur, it.hi, stop);
                self.ranges[it.f as usize].push((it.cur, it.end));
            }
            self.descend(d + 1, out_coord + vmax * free_stride);
            let mut exhausted = false;
            for it in its.iter_mut() {
                self.ranges[it.f as usize].pop();
                it.cur = it.end;
                if it.cur == it.hi {
                    exhausted = true;
                } else {
                    it.dig = it.dig_of(factors[it.f as usize].coords[it.cur]);
                }
            }
            if exhausted {
                break 'outer;
            }
        }
        self.iters[d] = its;
    }
}

/// Sums variable `var` out of a scalar factor: entries sharing all
/// other digits fold into one. Output is over `src_vars` minus `var`,
/// sorted. When `var` is the fastest digit the input order already
/// groups the runs; otherwise entries are re-keyed and sorted first
/// (ties between equal keys break by entry index, so the fold order is
/// deterministic — `plan.rs` only contracts integer factors, where
/// the order is immaterial anyway).
pub fn contract_sum(
    src: &CoordList,
    src_vars: &[Var],
    var: Var,
    n: usize,
    s: &mut JoinScratch,
    out: &mut CoordList,
) {
    assert_eq!(src.dim, 1, "contract_sum is scalar");
    let p = src_vars.len();
    let pos = src_vars.iter().position(|&v| v == var).expect("contracted var present");
    out.reset(1);
    if src.is_empty() {
        return;
    }
    let below = npow(n, p - 1 - pos);
    if pos == p - 1 {
        // Fastest digit: removing it keeps the coordinate order.
        let mut key = src.coords[0] / n;
        let mut acc = src.values[0];
        for (&c, &v) in src.coords[1..].iter().zip(&src.values[1..]) {
            let k = c / n;
            if k == key {
                acc += v;
            } else {
                out.push1(key, acc);
                key = k;
                acc = v;
            }
        }
        out.push1(key, acc);
    } else {
        s.keys.clear();
        for (i, &c) in src.coords.iter().enumerate() {
            let high = c / (below * n);
            let low = c % below;
            s.keys.push((high * below + low, i as u32));
        }
        s.keys.sort_unstable();
        let mut key = s.keys[0].0;
        let mut acc = src.values[s.keys[0].1 as usize];
        for &(k, idx) in &s.keys[1..] {
            if k == key {
                acc += src.values[idx as usize];
            } else {
                out.push1(key, acc);
                key = k;
                acc = src.values[idx as usize];
            }
        }
        out.push1(key, acc);
    }
    debug_assert!(out.is_strictly_sorted());
}

#[cfg(test)]
// Coordinates in expected values are written as explicit mixed-radix
// sums (`0 * 9 + 1 * 3 + 0`) so each digit is visible.
#[allow(clippy::erasing_op, clippy::identity_op)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A random scalar factor over `vars` with the given entry
    /// probability, plus its dense reference table.
    fn random_factor(
        vars: &[Var],
        n: usize,
        density: f64,
        rng: &mut StdRng,
    ) -> (CoordList, Vec<f64>) {
        let cells = npow(n, vars.len());
        let mut cl = CoordList::new(1);
        let mut dense = vec![0.0; cells];
        for (c, cell) in dense.iter_mut().enumerate() {
            if rng.gen_bool(density) {
                let v = f64::from(rng.gen_range(1..=3_i32));
                cl.push1(c, v);
                *cell = v;
            }
        }
        (cl, dense)
    }

    /// Dense reference of a join: pointwise product over the union
    /// variable space.
    fn dense_join(
        da: &[f64],
        a_vars: &[Var],
        db: &[f64],
        b_vars: &[Var],
        u_vars: &[Var],
        n: usize,
    ) -> Vec<f64> {
        let p = u_vars.len();
        let cells = npow(n, p);
        let proj = |digits: &[usize], vars: &[Var]| -> usize {
            vars.iter().fold(0, |acc, v| {
                let pos = u_vars.iter().position(|u| u == v).unwrap();
                acc * n + digits[pos]
            })
        };
        let mut out = vec![0.0; cells];
        let mut digits = vec![0usize; p];
        for (c, o) in out.iter_mut().enumerate() {
            digits_of(c, n, &mut digits);
            *o = da[proj(&digits, a_vars)] * db[proj(&digits, b_vars)];
        }
        out
    }

    fn to_dense(cl: &CoordList, cells: usize) -> Vec<f64> {
        let mut out = vec![0.0; cells];
        for (i, &c) in cl.coords().iter().enumerate() {
            out[c] = cl.values[i];
        }
        out
    }

    #[test]
    fn push_get_and_invariant() {
        let mut cl = CoordList::new(2);
        cl.push(3, &[1.0, 2.0]);
        cl.push(7, &[3.0, 4.0]);
        assert!(cl.is_strictly_sorted());
        assert_eq!(cl.get(7), Some(&[3.0, 4.0][..]));
        assert_eq!(cl.get(5), None);
        cl.push(5, &[9.0, 9.0]);
        assert!(!cl.is_strictly_sorted());
        cl.sort_entries(&mut JoinScratch::default());
        assert!(cl.is_strictly_sorted());
        assert_eq!(cl.coords(), &[3, 5, 7]);
        assert_eq!(cl.value(1), &[9.0, 9.0]);
    }

    #[test]
    fn join_on_shared_variable_is_matrix_product_support() {
        // A(1,2) ⋈ B(2,3) over a 3-vertex space.
        let n = 3;
        let mut a = CoordList::new(1);
        a.push1(0 * n + 1, 2.0); // (x1=0, x2=1)
        a.push1(2 * n + 1, 5.0); // (x1=2, x2=1)
        let mut b = CoordList::new(1);
        b.push1(1 * n + 0, 7.0); // (x2=1, x3=0)
        b.push1(2 * n + 2, 1.0); // (x2=2, x3=2) — no partner in A
        let mut out = CoordList::new(1);
        let mut out_vars = Vec::new();
        join_multiply(
            &a,
            &[1, 2],
            &b,
            &[2, 3],
            n,
            &mut JoinScratch::default(),
            &mut out,
            &mut out_vars,
        );
        assert_eq!(out_vars, vec![1, 2, 3]);
        // Matches: (0,1,0) = 14, (2,1,0) = 35.
        assert_eq!(out.coords(), &[0 * 9 + 1 * 3 + 0, 2 * 9 + 1 * 3 + 0]);
        assert_eq!(out.values(), &[14.0, 35.0]);
        assert!(out.is_strictly_sorted());
    }

    #[test]
    fn contract_fastest_and_middle_variable() {
        let n = 3;
        let mut f = CoordList::new(1);
        // Entries over vars (1,2,3): coords (a,b,c) → a·9 + b·3 + c.
        for (a, b, c, v) in [(0, 0, 1, 1.0), (0, 1, 1, 2.0), (0, 2, 1, 4.0), (1, 0, 0, 8.0)] {
            f.push1(a * 9 + b * 3 + c, v);
        }
        let mut s = JoinScratch::default();
        let mut out = CoordList::new(1);
        // Sum out x3 (fastest digit).
        contract_sum(&f, &[1, 2, 3], 3, n, &mut s, &mut out);
        assert_eq!(out.coords(), &[0 * 3 + 0, 0 * 3 + 1, 0 * 3 + 2, 1 * 3 + 0]);
        assert_eq!(out.values(), &[1.0, 2.0, 4.0, 8.0]);
        // Sum out x2 (middle digit): (0,·,1) entries fold.
        contract_sum(&f, &[1, 2, 3], 2, n, &mut s, &mut out);
        assert_eq!(out.coords(), &[0 * 3 + 1, 1 * 3 + 0]);
        assert_eq!(out.values(), &[7.0, 8.0]);
    }

    /// Dense reference of [`join_multiway`]'s semantics: enumerate all
    /// assignments of `order`, probe each factor at the coordinate of
    /// its own (ascending) variables, and fold products over the
    /// eliminated suffix into the free-prefix coordinate.
    fn dense_multiway(
        dense: &[Vec<f64>],
        factor_vars: &[Vec<Var>],
        order: &[Var],
        n_free: usize,
        n: usize,
    ) -> Vec<f64> {
        let p = order.len();
        let mut out = vec![0.0; npow(n, n_free)];
        let mut assign = vec![0usize; p];
        for cell in 0..npow(n, p) {
            digits_of(cell, n, &mut assign);
            let mut prod = 1.0;
            for (df, vars) in dense.iter().zip(factor_vars) {
                let c = vars
                    .iter()
                    .fold(0, |acc, v| acc * n + assign[order.iter().position(|o| o == v).unwrap()]);
                prod *= df[c];
            }
            let oc = (0..n_free).fold(0, |acc, d| acc * n + assign[d]);
            out[oc] += prod;
        }
        out
    }

    #[test]
    fn multiway_triangle_count_matches_dense() {
        let n = 5;
        let mut rng = StdRng::seed_from_u64(7);
        let vars: Vec<Vec<Var>> = vec![vec![1, 2], vec![2, 3], vec![1, 3]];
        let (mut factors, dense): (Vec<CoordList>, Vec<Vec<f64>>) =
            vars.iter().map(|v| random_factor(v, n, 0.5, &mut rng)).unzip();
        let mut out = CoordList::new(1);
        let mut s = JoinScratch::default();
        // Fully aggregated: n_free = 0, scalar count at coordinate 0.
        join_multiway(&mut factors, &vars, &[1, 2, 3], 0, n, &mut s, &mut out);
        let want = dense_multiway(&dense, &vars, &[1, 2, 3], 0, n);
        assert_eq!(to_dense(&out, 1), want);
        assert!(out.is_strictly_sorted());
    }

    #[test]
    fn multiway_free_prefix_emits_sorted_per_vertex_counts() {
        let n = 4;
        let mut rng = StdRng::seed_from_u64(11);
        let vars: Vec<Vec<Var>> = vec![vec![1, 2], vec![2, 3], vec![1, 3]];
        let (mut factors, dense): (Vec<CoordList>, Vec<Vec<f64>>) =
            vars.iter().map(|v| random_factor(v, n, 0.5, &mut rng)).unzip();
        let mut out = CoordList::new(1);
        let mut s = JoinScratch::default();
        // x1 free: per-vertex incident-triangle weights, eliminated
        // vars ordered 3 before 2 to exercise a non-ascending suffix.
        join_multiway(&mut factors, &vars, &[1, 3, 2], 1, n, &mut s, &mut out);
        assert!(out.is_strictly_sorted());
        let want = dense_multiway(&dense, &vars, &[1, 3, 2], 1, n);
        assert_eq!(to_dense(&out, n), want);
    }

    #[test]
    fn multiway_empty_factor_short_circuits() {
        let n = 3;
        let mut a = CoordList::new(1);
        a.push1(1, 1.0);
        let b = CoordList::new(1);
        let mut factors = vec![a, b];
        let vars: Vec<Vec<Var>> = vec![vec![1, 2], vec![2, 3]];
        let mut out = CoordList::new(1);
        let seeks = join_multiway(
            &mut factors,
            &vars,
            &[1, 2, 3],
            0,
            n,
            &mut JoinScratch::default(),
            &mut out,
        );
        assert!(out.is_empty());
        assert_eq!(seeks, 0);
    }

    #[test]
    fn trie_rekey_preserves_entry_multiset() {
        let n = 4;
        let mut rng = StdRng::seed_from_u64(23);
        let vars: Vec<Vec<Var>> = vec![vec![1, 2], vec![2, 3], vec![1, 3]];
        let (mut factors, _): (Vec<CoordList>, Vec<Vec<f64>>) =
            vars.iter().map(|v| random_factor(v, n, 0.6, &mut rng)).unzip();
        let before: Vec<(usize, Vec<f64>)> = factors
            .iter()
            .map(|f| {
                let mut vals = f.values().to_vec();
                vals.sort_by(f64::total_cmp);
                (f.len(), vals)
            })
            .collect();
        let mut out = CoordList::new(1);
        // Order [3, 1, 2] forces a non-identity re-key of every factor.
        join_multiway(&mut factors, &vars, &[3, 1, 2], 0, n, &mut JoinScratch::default(), &mut out);
        for (f, (len, vals)) in factors.iter().zip(&before) {
            assert_eq!(f.len(), *len, "re-key must not add or drop entries");
            assert!(f.is_strictly_sorted());
            let mut got = f.values().to_vec();
            got.sort_by(f64::total_cmp);
            assert_eq!(&got, vals, "re-key must permute, not rewrite, values");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Multiway join matches the dense reference on random cyclic
        /// factor sets, orders, and free prefixes, and the trie re-key
        /// keeps every factor strictly sorted.
        #[test]
        fn multiway_matches_dense_reference(seed in 0u64..10_000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 2 + (seed % 3) as usize;
            // Cyclic hypergraphs: triangle, 4-cycle, 4-clique, and a
            // triangle sharing an edge with a path.
            let vars: Vec<Vec<Var>> = match seed % 4 {
                0 => vec![vec![1, 2], vec![2, 3], vec![1, 3]],
                1 => vec![vec![1, 2], vec![2, 3], vec![3, 4], vec![1, 4]],
                2 => vec![
                    vec![1, 2], vec![1, 3], vec![1, 4], vec![2, 3], vec![2, 4], vec![3, 4],
                ],
                _ => vec![vec![1, 2], vec![2, 3], vec![1, 3], vec![3, 4]],
            };
            let all: Vec<Var> = { let mut a: Vec<Var> =
                vars.iter().flatten().copied().collect(); a.sort_unstable(); a.dedup(); a };
            let n_free = (seed / 4 % 3) as usize % all.len();
            // order = free prefix (ascending) + a rotation of the rest.
            let mut order: Vec<Var> = all[..n_free].to_vec();
            let mut rest: Vec<Var> = all[n_free..].to_vec();
            let rot = (seed % 7) as usize % rest.len().max(1);
            rest.rotate_left(rot);
            order.append(&mut rest);
            let (mut factors, dense): (Vec<CoordList>, Vec<Vec<f64>>) =
                vars.iter().map(|v| random_factor(v, n, 0.4, &mut rng)).unzip();
            let mut out = CoordList::new(1);
            join_multiway(&mut factors, &vars, &order, n_free, n,
                          &mut JoinScratch::default(), &mut out);
            prop_assert!(out.is_strictly_sorted());
            for f in &factors {
                prop_assert!(f.is_strictly_sorted(), "trie re-key must keep factors sorted");
            }
            let want = dense_multiway(&dense, &vars, &order, n_free, n);
            prop_assert_eq!(to_dense(&out, want.len()), want);
        }

        /// Join result matches the dense product and satisfies the
        /// sorted/dedup invariant, across overlapping variable sets.
        #[test]
        fn join_matches_dense_reference(seed in 0u64..10_000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 2 + (seed % 4) as usize;
            // Variable sets with varying overlap: {1,2}/{2,3}, {1,3}/{1,3},
            // {1,2,3}/{3,4}, {2}/{1,2}.
            let (av, bv): (Vec<Var>, Vec<Var>) = match seed % 4 {
                0 => (vec![1, 2], vec![2, 3]),
                1 => (vec![1, 3], vec![1, 3]),
                2 => (vec![1, 2, 3], vec![3, 4]),
                _ => (vec![2], vec![1, 2]),
            };
            let (a, da) = random_factor(&av, n, 0.4, &mut rng);
            let (b, db) = random_factor(&bv, n, 0.4, &mut rng);
            let mut out = CoordList::new(1);
            let mut uv = Vec::new();
            join_multiply(&a, &av, &b, &bv, n, &mut JoinScratch::default(), &mut out, &mut uv);
            prop_assert!(out.is_strictly_sorted(), "join output must be sorted + deduped");
            let want = dense_join(&da, &av, &db, &bv, &uv, n);
            // The sparse join stores exactly the support intersection;
            // explicit zeros cannot arise from positive integer values.
            prop_assert_eq!(to_dense(&out, want.len()), want);
        }

        /// Contraction matches the dense marginal and keeps the
        /// invariant, for every digit position.
        #[test]
        fn contract_matches_dense_reference(seed in 0u64..10_000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 2 + (seed % 4) as usize;
            let vars: Vec<Var> = vec![1, 2, 3];
            let (f, df) = random_factor(&vars, n, 0.4, &mut rng);
            if f.is_empty() { return; }
            let var = vars[(seed % 3) as usize];
            let mut out = CoordList::new(1);
            contract_sum(&f, &vars, var, n, &mut JoinScratch::default(), &mut out);
            prop_assert!(out.is_strictly_sorted());
            // Dense marginal.
            let keep: Vec<Var> = vars.iter().copied().filter(|&v| v != var).collect();
            let mut want = vec![0.0; npow(n, keep.len())];
            let mut digits = vec![0usize; vars.len()];
            for (c, &v) in df.iter().enumerate() {
                digits_of(c, n, &mut digits);
                let k = keep.iter().fold(0, |acc, kv| {
                    acc * n + digits[vars.iter().position(|v2| v2 == kv).unwrap()]
                });
                want[k] += v;
            }
            let got = to_dense(&out, want.len());
            // Entries that fold to zero are absent sparse-side; values
            // here are positive integers so that cannot happen.
            prop_assert_eq!(got, want);
        }

        /// Out-of-order pushes + sort restore the invariant and lose
        /// nothing.
        #[test]
        fn sort_entries_restores_invariant(seed in 0u64..10_000) {
            let mut rng = StdRng::seed_from_u64(seed);
            let dim = 1 + (seed % 3) as usize;
            let mut coords: Vec<usize> = (0..40).collect();
            // Shuffle.
            for i in (1..coords.len()).rev() {
                coords.swap(i, rng.gen_range(0..=i));
            }
            let mut cl = CoordList::new(dim);
            for &c in coords.iter().take(17) {
                let row: Vec<f64> = (0..dim).map(|j| (c * dim + j) as f64).collect();
                cl.push(c, &row);
            }
            cl.sort_entries(&mut JoinScratch::default());
            prop_assert!(cl.is_strictly_sorted());
            // Every entry still carries its own row.
            for (i, &c) in cl.coords().iter().enumerate() {
                let want: Vec<f64> = (0..dim).map(|j| (c * dim + j) as f64).collect();
                prop_assert_eq!(cl.value(i), &want[..]);
            }
        }
    }
}
