//! Evaluation of `GEL(Ω,Θ)` expressions on a graph: computes the
//! embedding table `ξ_φ(G, ·) : V^p → ℝ^d` (paper slides 42–46).
//!
//! Evaluation is performed by the compiled engine in [`crate::plan`]:
//! the expression is lowered to a flat plan of stride-addressed slab
//! kernels (deduplicated by [`Expr::structural_hash`], exactly like
//! the old interpreter's memo) and executed with slice-level kernels.
//! Aggregations cost `O(n^{|free ∪ over|})` in general; the
//! *guard-aware fast path* recognizes the MPNN shape
//! `agg_{y}(… | E(x, y))` and iterates neighbour lists instead of all
//! of `V` — the sparse-vs-dense ablation called out in DESIGN.md §6.
//!
//! The original cell-at-a-time tree-walking interpreter is retained
//! under `#[cfg(test)]` as the property-test oracle (module
//! [`oracle`]); the engine must reproduce its tables *bit-identically*
//! at any thread count.

use gel_graph::Graph;

use crate::ast::Expr;
use crate::plan::EvalEngine;
use crate::table::EmbeddingTable;

/// Evaluator options (ablations).
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions {
    /// Use the neighbour-list fast path for edge-guarded single-variable
    /// aggregations (default true).
    pub guard_fast_path: bool,
    /// Allow sparse (coordinate-list) node representations and the
    /// variable-elimination sum kernel in the compiled engine (default
    /// true). `false` forces the pure dense PR-5 engine — the ablation
    /// baseline for the bench density sweep.
    pub sparse: bool,
    /// Minimum dense cell count before a node is considered for a
    /// sparse representation (default 4096): below it the dense kernels
    /// win on constant factors, and the estimated nonzeros must also be
    /// at most a quarter of the cells. `0` forces sparse everywhere it
    /// is representable — the property-test and ablation hook.
    pub sparse_min_cells: usize,
    /// Use the worst-case-optimal multiway join ([`Kind::JoinWco`])
    /// for *cyclic* sum-product queries (default true). `false` keeps
    /// the binary merge-join `AggElim` plan on cyclic shapes — the
    /// ablation baseline the bench crossover sweep compares against.
    /// Acyclic queries take the FAQ elimination path either way.
    ///
    /// [`Kind::JoinWco`]: crate::plan::EvalEngine
    pub wco: bool,
    /// Allow the *root* table to stay sparse (default false): when the
    /// plan root already emits a coordinate list, skip the final
    /// densify and return a sparse [`EmbeddingTable`] instead of an
    /// `n^width × dim` slab. Callers that index the result cell-wise
    /// should keep this off or densify explicitly.
    ///
    /// [`EmbeddingTable`]: crate::table::EmbeddingTable
    pub sparse_output: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        Self {
            guard_fast_path: true,
            sparse: true,
            sparse_min_cells: 4096,
            wco: true,
            sparse_output: false,
        }
    }
}

/// Evaluates `expr` on `g`, producing its embedding table.
///
/// Builds a throwaway [`EvalEngine`] per call; hot loops evaluating
/// many expressions should hold an engine and use
/// [`EvalEngine::eval`], which reuses the compiled plan and its slabs.
///
/// # Panics
/// Panics on ill-typed expressions ([`Expr::validate`] first for
/// untrusted input) and on label component indices outside the graph's
/// label dimension — run [`check_against_graph`] first to turn both
/// into errors.
pub fn eval(expr: &Expr, g: &Graph) -> EmbeddingTable {
    eval_with(expr, g, EvalOptions::default())
}

/// A pre-flight incompatibility between an expression and a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The expression is ill-typed.
    Type(crate::ast::TypeError),
    /// `Lab_j` with `j` outside the graph's label dimension.
    LabelIndex {
        /// Offending component.
        j: usize,
        /// The graph's label dimension.
        label_dim: usize,
    },
    /// `LabelVec` with a dimension different from the graph's.
    LabelVecDim {
        /// Declared dimension.
        declared: usize,
        /// The graph's label dimension.
        label_dim: usize,
    },
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Type(t) => write!(f, "{t}"),
            EvalError::LabelIndex { j, label_dim } => {
                write!(f, "lab{j} out of range for label dimension {label_dim}")
            }
            EvalError::LabelVecDim { declared, label_dim } => {
                write!(f, "labvec{declared} does not match the graph's label dimension {label_dim}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Validates that `expr` can be evaluated on `g` (well-typed, label
/// atoms within the graph's label dimension). Run this before [`eval`]
/// on untrusted input to get errors instead of panics.
pub fn check_against_graph(expr: &Expr, g: &Graph) -> Result<(), EvalError> {
    expr.validate().map_err(EvalError::Type)?;
    fn walk(e: &Expr, dim: usize) -> Result<(), EvalError> {
        match e {
            Expr::Label { j, .. } if *j >= dim => {
                Err(EvalError::LabelIndex { j: *j, label_dim: dim })
            }
            Expr::LabelVec { dim: d, .. } if *d != dim => {
                Err(EvalError::LabelVecDim { declared: *d, label_dim: dim })
            }
            Expr::Apply { args, .. } => args.iter().try_for_each(|a| walk(a, dim)),
            Expr::Aggregate { value, guard, .. } => {
                walk(value, dim)?;
                guard.as_ref().map_or(Ok(()), |gd| walk(gd, dim))
            }
            Expr::Shared(e) => walk(e, dim),
            _ => Ok(()),
        }
    }
    walk(expr, g.label_dim())
}

/// [`eval`] with the [`check_against_graph`] pre-flight: errors instead
/// of panics on incompatible input.
pub fn try_eval(expr: &Expr, g: &Graph) -> Result<EmbeddingTable, EvalError> {
    check_against_graph(expr, g)?;
    Ok(eval_with(expr, g, EvalOptions::default()))
}

/// Evaluates with explicit options.
///
/// The result is moved out of the engine without a defensive copy (the
/// old interpreter deep-cloned the root table whenever its memo still
/// shared it).
pub fn eval_with(expr: &Expr, g: &Graph, opts: EvalOptions) -> EmbeddingTable {
    EvalEngine::with_options(opts).eval_owned(expr, g)
}

/// The original bottom-up tree-walking interpreter, kept verbatim as
/// the property-test oracle for the compiled engine (the same move as
/// `crates/wl/src/naive.rs`): its per-cell `cell_env` addressing and
/// `Rc` memo are transparently correct, and `crate::plan`'s tests
/// assert the engine reproduces its tables bit-identically.
#[cfg(test)]
pub(crate) mod oracle {
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::rc::Rc;

    use gel_graph::{Graph, Vertex};

    use crate::ast::{CmpOp, Expr};
    use crate::func::Agg;
    use crate::table::{EmbeddingTable, Var};

    use super::EvalOptions;

    /// Oracle evaluation with default options.
    pub fn oracle_eval(expr: &Expr, g: &Graph) -> EmbeddingTable {
        oracle_eval_with(expr, g, EvalOptions::default())
    }

    /// Oracle evaluation with explicit options.
    pub fn oracle_eval_with(expr: &Expr, g: &Graph, opts: EvalOptions) -> EmbeddingTable {
        let ev = Evaluator { g, opts, memo: RefCell::new(HashMap::new()) };
        let rc = ev.eval_memo(expr);
        // Dropping the memo's clones makes the root reference unique —
        // no defensive deep copy of the final table.
        ev.memo.borrow_mut().clear();
        Rc::try_unwrap(rc).expect("root table uniquely owned after memo clear")
    }

    struct Evaluator<'a> {
        g: &'a Graph,
        opts: EvalOptions,
        /// Memo keyed by [`Expr::structural_hash`]: the architecture and
        /// WL-simulation compilers produce expressions with massive
        /// duplication of equal subtrees (each layer embeds copies of the
        /// previous one); memoizing collapses that duplication so equal
        /// subtrees are evaluated once.
        memo: RefCell<HashMap<u64, Rc<EmbeddingTable>>>,
    }

    /// Iterates all assignments of `vars.len()` vertices, invoking `f` with
    /// the current assignment (in `vars` order).
    fn for_each_assignment(n: usize, arity: usize, mut f: impl FnMut(&[Vertex])) {
        if arity == 0 {
            f(&[]);
            return;
        }
        let mut cur = vec![0 as Vertex; arity];
        loop {
            f(&cur);
            // Odometer increment.
            let mut i = arity;
            loop {
                if i == 0 {
                    return;
                }
                i -= 1;
                cur[i] += 1;
                if (cur[i] as usize) < n {
                    break;
                }
                cur[i] = 0;
            }
        }
    }

    impl Evaluator<'_> {
        fn eval_memo(&self, expr: &Expr) -> Rc<EmbeddingTable> {
            let key = expr.structural_hash();
            if let Some(hit) = self.memo.borrow().get(&key) {
                return Rc::clone(hit);
            }
            let table = Rc::new(self.eval(expr));
            self.memo.borrow_mut().insert(key, Rc::clone(&table));
            table
        }

        fn eval(&self, expr: &Expr) -> EmbeddingTable {
            let n = self.g.num_vertices();
            match expr {
                // Transparent wrapper (and the memo key is the inner
                // expression's structural hash, so sharing dedups).
                Expr::Shared(e) => self.eval(e),
                Expr::Label { j, var } => {
                    assert!(
                        *j < self.g.label_dim(),
                        "label component {j} out of range (dim {})",
                        self.g.label_dim()
                    );
                    let mut t = EmbeddingTable::zeros(vec![*var], 1, n);
                    for v in 0..n as Vertex {
                        t.cell_mut(&[v])[0] = self.g.label(v)[*j];
                    }
                    t
                }
                Expr::LabelVec { var, dim } => {
                    assert_eq!(
                        *dim,
                        self.g.label_dim(),
                        "LabelVec dimension does not match the graph's label dimension"
                    );
                    let mut t = EmbeddingTable::zeros(vec![*var], *dim, n);
                    for v in 0..n as Vertex {
                        t.cell_mut(&[v]).copy_from_slice(self.g.label(v));
                    }
                    t
                }
                Expr::Edge { from, to } => {
                    let mut vars = vec![*from, *to];
                    vars.sort_unstable();
                    let mut t = EmbeddingTable::zeros(vars.clone(), 1, n);
                    // Fill sparsely from the arc list.
                    for (u, v) in self.g.arcs() {
                        let assign = if vars[0] == *from { [u, v] } else { [v, u] };
                        t.cell_mut(&assign)[0] = 1.0;
                    }
                    t
                }
                Expr::Cmp { a, op, b } => {
                    let mut vars = vec![*a, *b];
                    vars.sort_unstable();
                    let mut t = EmbeddingTable::zeros(vars, 1, n);
                    for v in 0..n as Vertex {
                        for w in 0..n as Vertex {
                            let holds = match op {
                                CmpOp::Eq => v == w,
                                CmpOp::Ne => v != w,
                            };
                            if holds {
                                t.cell_mut(&[v, w])[0] = 1.0;
                            }
                        }
                    }
                    t
                }
                Expr::Const { values } => EmbeddingTable::scalar_cell(values.clone(), n),
                Expr::Apply { func, args } => {
                    let tables: Vec<Rc<EmbeddingTable>> =
                        args.iter().map(|a| self.eval_memo(a)).collect();
                    // Union of variables.
                    let mut vars: Vec<Var> =
                        tables.iter().flat_map(|t| t.vars().iter().copied()).collect();
                    vars.sort_unstable();
                    vars.dedup();
                    let d_in: usize = tables.iter().map(|t| t.dim()).sum();
                    let d_out = func.out_dim(d_in).expect("ill-typed Apply");
                    let mut out = EmbeddingTable::zeros(vars.clone(), d_out, n);
                    let max_var = vars.iter().copied().max().unwrap_or(0) as usize;
                    let mut env = vec![0 as Vertex; max_var + 1];
                    let mut input = Vec::with_capacity(d_in);
                    let mut result = Vec::with_capacity(d_out);
                    for_each_assignment(n, vars.len(), |assign| {
                        for (slot, &var) in assign.iter().zip(&vars) {
                            env[var as usize] = *slot;
                        }
                        input.clear();
                        for t in &tables {
                            input.extend_from_slice(t.cell_env(&env));
                        }
                        func.apply(&input, &mut result);
                        out.cell_mut(assign).copy_from_slice(&result);
                    });
                    out
                }
                Expr::Aggregate { agg, over, value, guard } => {
                    self.eval_aggregate(*agg, over, value, guard.as_deref())
                }
            }
        }

        fn eval_aggregate(
            &self,
            agg: Agg,
            over: &[Var],
            value: &Expr,
            guard: Option<&Expr>,
        ) -> EmbeddingTable {
            let n = self.g.num_vertices();

            // Fast path: single aggregation variable with an edge guard
            // anchored at a free variable — the MPNN neighbourhood shape.
            if self.opts.guard_fast_path && over.len() == 1 {
                if let Some(Expr::Edge { from, to }) = guard {
                    let y = over[0];
                    let anchor = if *to == y { Some((*from, true)) } else { None }
                        .or(if *from == y { Some((*to, false)) } else { None });
                    if let Some((x, outgoing)) = anchor {
                        if x != y {
                            return self.eval_nbr_aggregate(agg, x, y, outgoing, value);
                        }
                    }
                }
            }

            let value_t = self.eval_memo(value);
            let guard_t = guard.map(|ge| self.eval_memo(ge));

            // Output variables: (value ∪ guard vars) \ over.
            let mut all: Vec<Var> = value_t.vars().to_vec();
            if let Some(gt) = &guard_t {
                all.extend_from_slice(gt.vars());
            }
            all.sort_unstable();
            all.dedup();
            let out_vars: Vec<Var> = all.iter().copied().filter(|v| !over.contains(v)).collect();
            let over_sorted: Vec<Var> = {
                let mut o = over.to_vec();
                o.sort_unstable();
                o
            };

            let dim = value_t.dim();
            let mut out = EmbeddingTable::zeros(out_vars.clone(), dim, n);
            let max_var = all.iter().chain(over_sorted.iter()).copied().max().unwrap_or(0) as usize;
            let mut env = vec![0 as Vertex; max_var + 1];
            for_each_assignment(n, out_vars.len(), |outer| {
                for (slot, &var) in outer.iter().zip(&out_vars) {
                    env[var as usize] = *slot;
                }
                let mut state = agg.init(dim);
                // Iterate inner assignments over the aggregated variables.
                // `over` is disjoint from `out_vars`, so the inner loop can
                // reuse the same env buffer: it only writes the aggregated
                // slots, never the outer ones.
                for_each_assignment(n, over_sorted.len(), |inner| {
                    for (slot, &var) in inner.iter().zip(&over_sorted) {
                        env[var as usize] = *slot;
                    }
                    let pass = match &guard_t {
                        Some(gt) => gt.cell_env(&env)[0] != 0.0,
                        None => true,
                    };
                    if pass {
                        state.push(value_t.cell_env(&env));
                    }
                });
                out.cell_mut(outer).copy_from_slice(&state.finish());
            });
            out
        }

        /// Neighbour-list fast path for `agg_{y}(value | E(x, y))` (or the
        /// reversed guard `E(y, x)` with `outgoing = false`).
        fn eval_nbr_aggregate(
            &self,
            agg: Agg,
            x: Var,
            y: Var,
            outgoing: bool,
            value: &Expr,
        ) -> EmbeddingTable {
            let n = self.g.num_vertices();
            let value_t = self.eval_memo(value);
            let dim = value_t.dim();
            let mut out_vars: Vec<Var> =
                value_t.vars().iter().copied().filter(|&v| v != y).collect();
            if !out_vars.contains(&x) {
                out_vars.push(x);
                out_vars.sort_unstable();
            }
            let mut out = EmbeddingTable::zeros(out_vars.clone(), dim, n);
            let max_var = out_vars.iter().copied().max().unwrap_or(0).max(y) as usize;
            let mut env = vec![0 as Vertex; max_var + 1];
            for_each_assignment(n, out_vars.len(), |outer| {
                for (slot, &var) in outer.iter().zip(&out_vars) {
                    env[var as usize] = *slot;
                }
                let anchor_v = env[x as usize];
                let nbrs = if outgoing {
                    self.g.out_neighbors(anchor_v)
                } else {
                    self.g.in_neighbors(anchor_v)
                };
                let mut state = agg.init(dim);
                // `y` is never an output variable (the caller guarantees
                // `x != y`), so writing its slot in place is safe.
                for &w in nbrs {
                    env[y as usize] = w;
                    state.push(value_t.cell_env(&env));
                }
                out.cell_mut(outer).copy_from_slice(&state.finish());
            });
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::build::*;
    use crate::func::{Agg, Func};
    use gel_graph::families::{cycle, path, star};
    use gel_graph::GraphBuilder;

    #[test]
    fn label_atom_reads_components() {
        let g = path(3).with_labels(vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0], 2);
        let t = eval(&lab(1, 1), &g);
        assert_eq!(t.cell(&[0]), &[10.0]);
        assert_eq!(t.cell(&[2]), &[30.0]);
    }

    #[test]
    fn edge_atom_matches_adjacency() {
        let g = path(3);
        let t = eval(&edge(1, 2), &g);
        assert_eq!(t.cell(&[0, 1]), &[1.0]);
        assert_eq!(t.cell(&[1, 0]), &[1.0]);
        assert_eq!(t.cell(&[0, 2]), &[0.0]);
        assert_eq!(t.cell(&[0, 0]), &[0.0]);
    }

    #[test]
    fn edge_atom_reversed_vars() {
        // E(x2, x1): entry for (v_{x1}, v_{x2}) = has_edge(v_{x2}, v_{x1}).
        let mut b = GraphBuilder::new(2);
        b.add_arc(0, 1);
        let g = b.build();
        let t = eval(&edge(2, 1), &g);
        // vars sorted = [1,2]; assignment [x1=1, x2=0] asks has_edge(0, 1).
        assert_eq!(t.cell(&[1, 0]), &[1.0]);
        assert_eq!(t.cell(&[0, 1]), &[0.0]);
    }

    #[test]
    fn cmp_atoms() {
        let g = path(3);
        let te = eval(&eq(1, 2), &g);
        assert_eq!(te.cell(&[1, 1]), &[1.0]);
        assert_eq!(te.cell(&[1, 2]), &[0.0]);
        let tn = eval(&ne(1, 2), &g);
        assert_eq!(tn.cell(&[1, 1]), &[0.0]);
        assert_eq!(tn.cell(&[1, 2]), &[1.0]);
    }

    #[test]
    fn sum_over_neighbors_is_degree() {
        // deg(v) = sum_{x2}(1 | E(x1,x2)).
        let g = star(3);
        let e = nbr_agg(Agg::Sum, 1, 2, constant(vec![1.0]));
        let t = eval(&e, &g);
        assert_eq!(t.cell(&[0]), &[3.0]);
        assert_eq!(t.cell(&[1]), &[1.0]);
    }

    #[test]
    fn fast_path_matches_dense_path() {
        let g = cycle(5).with_labels(vec![1.0, 2.0, 3.0, 4.0, 5.0], 1);
        let e = nbr_agg(Agg::Sum, 1, 2, lab(0, 2));
        let on = EvalOptions { guard_fast_path: true, ..EvalOptions::default() };
        let off = EvalOptions { guard_fast_path: false, ..EvalOptions::default() };
        let fast = eval_with(&e, &g, on);
        let dense = eval_with(&e, &g, off);
        assert!(fast.approx_eq(&dense, 0.0));
        for agg in [Agg::Mean, Agg::Max, Agg::Min] {
            let e = nbr_agg(agg, 1, 2, lab(0, 2));
            assert!(eval_with(&e, &g, on).approx_eq(&eval_with(&e, &g, off), 0.0));
        }
    }

    #[test]
    fn global_aggregation_closes_expression() {
        // Σ_v deg(v) = 2|E|.
        let g = cycle(6);
        let deg = nbr_agg(Agg::Sum, 1, 2, constant(vec![1.0]));
        let total = global_agg(Agg::Sum, 1, deg);
        let t = eval(&total, &g);
        assert_eq!(t.value(), &[12.0]);
    }

    #[test]
    fn triangle_expression_in_gel3() {
        // f_mul(E(x1,x2), E(x2,x3), E(x1,x3)) summed over all three vars
        // counts ordered triangles = 6·#triangles (slide 60's example).
        let tri = apply(Func::Mul { arity: 3, dim: 1 }, vec![edge(1, 2), edge(2, 3), edge(1, 3)]);
        let count = agg_over(Agg::Sum, vec![1, 2, 3], tri, None);
        let k4 = gel_graph::families::complete(4);
        assert_eq!(eval(&count, &k4).value(), &[24.0]); // 4 triangles · 6
        let c6 = cycle(6);
        assert_eq!(eval(&count, &c6).value(), &[0.0]);
    }

    #[test]
    fn mean_on_isolated_vertex_is_zero() {
        let g = GraphBuilder::new(2).build(); // no edges
        let e = nbr_agg(Agg::Mean, 1, 2, constant(vec![5.0]));
        let t = eval(&e, &g);
        assert_eq!(t.cell(&[0]), &[0.0], "empty bag ⇒ 0 by convention");
    }

    #[test]
    fn apply_aligns_different_var_sets() {
        // mul(lab0(x1), lab0(x2)) over a 2-vertex graph.
        let g = path(2).with_labels(vec![3.0, 5.0], 1);
        let e = mul2(lab(0, 1), lab(0, 2));
        let t = eval(&e, &g);
        assert_eq!(t.cell(&[0, 1]), &[15.0]);
        assert_eq!(t.cell(&[1, 1]), &[25.0]);
    }

    #[test]
    fn guarded_aggregation_with_non_edge_guard() {
        // Count vertices with the same label: sum_{x2}(1 | 1[x1 != x2] ... )
        let g = path(3).with_labels(vec![1.0, 1.0, 2.0], 1);
        // guard: x1 != x2
        let e = agg_over(Agg::Sum, vec![2], constant(vec![1.0]), Some(ne(1, 2)));
        let t = eval(&e, &g);
        assert_eq!(t.cell(&[0]), &[2.0]);
    }

    #[test]
    fn multi_var_aggregation() {
        // sum over (x2,x3) of E(x2,x3) with x1 free: constant per x1 = #arcs.
        let g = path(3);
        let e =
            agg_over(Agg::Sum, vec![2, 3], apply(Func::Concat, vec![edge(2, 3)]), Some(ne(1, 2)));
        // guard x1 != x2 removes x2 = x1 rows: for vertex 1 (middle) the
        // arcs not incident-from x2=1: arcs (0,1),(1,0),(1,2),(2,1) minus
        // those with source 1 → 2 arcs.
        let t = eval(&e, &g);
        assert_eq!(t.cell(&[1]), &[2.0]);
    }

    #[test]
    fn try_eval_reports_label_mismatches() {
        let g = path(3); // label_dim 1
        assert!(matches!(
            try_eval(&lab(3, 1), &g),
            Err(EvalError::LabelIndex { j: 3, label_dim: 1 })
        ));
        assert!(matches!(
            try_eval(&lab_vec(1, 4), &g),
            Err(EvalError::LabelVecDim { declared: 4, label_dim: 1 })
        ));
        assert!(matches!(try_eval(&edge(1, 1), &g), Err(EvalError::Type(_))));
        assert!(try_eval(&lab(0, 1), &g).is_ok());
        // Nested occurrences are found too.
        let nested = nbr_agg(Agg::Sum, 1, 2, lab(7, 2));
        assert!(try_eval(&nested, &g).is_err());
    }

    #[test]
    fn readout_of_vertex_embedding_is_invariant() {
        use gel_graph::random::{erdos_renyi, random_permutation};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        let g = erdos_renyi(9, 0.4, &mut StdRng::seed_from_u64(8));
        let h = g.permute(&random_permutation(9, &mut rng));
        // A small MPNN-ish closed expression.
        let inner = nbr_agg(Agg::Sum, 1, 2, lab(0, 2));
        let e = global_agg(Agg::Sum, 1, mul2(inner.clone(), inner));
        assert!(eval(&e, &g).approx_eq(&eval(&e, &h), 1e-9), "invariance (slide 11)");
    }
}
