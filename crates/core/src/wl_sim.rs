//! Simulating colour refinement and k-WL *inside* the language — the
//! constructive halves of the paper's separation-power equalities:
//!
//! * `ρ(CR) = ρ(MPNN(Ω, sum))` (slide 52, Morris et al.): an L-round
//!   MPNN expression whose values induce the round-L CR partition;
//! * `ρ(k-WL) = ρ(GEL_{k+1}(Ω, sum))` (slide 66): a `GEL_{k+1}`
//!   expression whose values induce the k-WL partition of k-tuples.
//!
//! Both constructions use the injective mix [`Func::Hash`]
//! (GIN-style: a sum of injectively-hashed values identifies the
//! multiset). Hash collisions over a corpus would make the experiments
//! fail *loudly* — every test compares the induced partitions exactly.

use crate::ast::{build, Expr};
use crate::func::{Agg, Func};
use crate::table::Var;

/// Two independent 36-bit hash channels side by side: a value collision
/// requires a simultaneous collision under both seeds (~2⁻⁷² per pair),
/// and each channel's sums stay exact in `f64` (see [`Func::Hash`]).
fn hash2(seed: u64, e: Expr) -> Expr {
    build::apply(Func::Concat, vec![build::hash(2 * seed, e.clone()), build::hash(2 * seed + 1, e)])
}

/// An MPNN(Ω, sum) expression with free variable `x1` whose value
/// partition after `rounds` refinement layers equals the colour
/// refinement partition after `rounds` rounds (on graphs with label
/// dimension `label_dim`).
///
/// Construction per round `t` (two variables only, slide 42):
///
/// ```text
/// c_t(x1) = hash( concat( c_{t−1}(x1),
///                         sum_{x2}( hash(c_{t−1}(x2)) | E(x1,x2) ) ) )
/// ```
pub fn cr_expr(label_dim: usize, rounds: usize) -> Expr {
    // Each round embeds the previous one several times; sharing the
    // rounds keeps the materialized expression linear in `rounds`
    // where owned children would make it exponential (`Expr::Shared`).
    let mut cur = build::share(hash2(0, build::lab_vec(1, label_dim)));
    for t in 0..rounds {
        let seed_in = 2 * t as u64 + 1;
        let seed_out = 2 * t as u64 + 2;
        let prev_other = cur.swap_vars(1, 2);
        let msg = build::nbr_agg(Agg::Sum, 1, 2, hash2(seed_in, prev_other));
        let cat = build::apply(Func::Concat, vec![cur, msg]);
        cur = build::share(hash2(seed_out, cat));
    }
    cur
}

/// The graph-level readout of [`cr_expr`]:
/// `sum_{x1}( hash(c_L(x1)) )` — equal values iff equal colour
/// histograms (slide 50: a graph's colour is the multiset of its
/// vertex colours).
pub fn cr_graph_expr(label_dim: usize, rounds: usize) -> Expr {
    let vertex = cr_expr(label_dim, rounds);
    build::global_agg(Agg::Sum, 1, hash2(u64::MAX / 2, vertex))
}

/// A `GEL_{k+1}(Ω, sum)` expression with free variables `x1 … x_k`
/// whose value partition after `rounds` layers equals the *folklore*
/// k-WL partition of k-tuples after `rounds` rounds.
///
/// Round `t` mirrors the k-FWL signature: with the fresh variable
/// `y = x_{k+1}`,
///
/// ```text
/// c_t(x̄) = hash( concat( c_{t−1}(x̄),
///            sum_{y}( hash( concat_i c_{t−1}(x̄[i ← y]) ) ) ) )
/// ```
///
/// The initial colour hashes the atomic type: all pairwise edge atoms,
/// equality atoms and labels.
///
/// # Panics
/// Panics if `k < 2` (use [`cr_expr`] for the 1-dimensional case, per
/// the paper's convention that 1-WL *is* colour refinement).
pub fn k_wl_expr(k: usize, label_dim: usize, rounds: usize) -> Expr {
    assert!(k >= 2, "use cr_expr for k = 1");
    assert!(k < u8::MAX as usize, "too many variables");
    let fresh: Var = (k + 1) as Var;

    // Atomic type: ordered adjacency + equality pattern + labels.
    let mut parts: Vec<Expr> = Vec::new();
    for i in 1..=k as Var {
        for j in 1..=k as Var {
            if i != j {
                parts.push(build::edge(i, j));
                parts.push(build::eq(i, j));
            }
        }
    }
    for i in 1..=k as Var {
        parts.push(build::lab_vec(i, label_dim));
    }
    // Rounds are shared for the same reason as in [`cr_expr`]: each
    // layer embeds k+1 copies of the previous one.
    let mut cur = build::share(hash2(0, build::apply(Func::Concat, parts)));

    for t in 0..rounds {
        let seed_in = 2 * t as u64 + 1;
        let seed_out = 2 * t as u64 + 2;
        // Substituted copies c_{t−1}(x̄[i ← y]).
        let subs: Vec<Expr> = (1..=k as Var).map(|i| cur.swap_vars(i, fresh)).collect();
        let vec_sig = hash2(seed_in, build::apply(Func::Concat, subs));
        let msg = build::agg_over(Agg::Sum, vec![fresh], vec_sig, None);
        let cat = build::apply(Func::Concat, vec![cur, msg]);
        cur = build::share(hash2(seed_out, cat));
    }
    cur
}

/// Graph-level readout of [`k_wl_expr`]: sum of hashed stable tuple
/// colours over all k-tuples.
pub fn k_wl_graph_expr(k: usize, label_dim: usize, rounds: usize) -> Expr {
    let tuple = k_wl_expr(k, label_dim, rounds);
    let over: Vec<Var> = (1..=k as Var).collect();
    build::agg_over(Agg::Sum, over, hash2(u64::MAX / 2, tuple), None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, Fragment};
    use crate::eval::eval;
    use gel_graph::families::{cr_blind_pair, cycle, path, petersen, star};
    use gel_graph::Graph;
    use gel_wl::{color_refinement, k_wl, CrOptions, WlVariant};

    /// The partition of the vertices of `g` induced by the expression's
    /// values must match the CR colouring's partition.
    fn partitions_match(vals: &[u32], colors: &[gel_wl::Color]) -> bool {
        assert_eq!(vals.len(), colors.len());
        for i in 0..vals.len() {
            for j in (i + 1)..vals.len() {
                if (vals[i] == vals[j]) != (colors[i] == colors[j]) {
                    return false;
                }
            }
        }
        true
    }

    fn check_cr_sim(g: &Graph, rounds: usize) {
        let e = cr_expr(g.label_dim(), rounds);
        let t = eval(&e, g);
        let part = t.value_partition();
        let c =
            color_refinement(&[g], CrOptions { max_rounds: Some(rounds), ignore_labels: false });
        assert!(partitions_match(&part, &c.colors[0]), "CR simulation diverged on {rounds} rounds");
    }

    #[test]
    fn cr_expr_matches_cr_partition() {
        for g in [path(7), star(4), cycle(6), petersen()] {
            for rounds in [0usize, 1, 2, 4] {
                check_cr_sim(&g, rounds);
            }
        }
    }

    #[test]
    fn cr_expr_is_mpnn_fragment() {
        let e = cr_expr(1, 3);
        assert_eq!(analyze(&e).fragment, Fragment::Mpnn);
        let g = cr_graph_expr(1, 3);
        assert_eq!(analyze(&g).fragment, Fragment::Mpnn);
        assert!(g.free_vars().is_empty());
    }

    #[test]
    fn cr_graph_expr_separates_exactly_like_cr() {
        // CR-blind pair: equal readouts. Star vs path: different.
        let (a, b) = cr_blind_pair();
        let e = cr_graph_expr(1, 6);
        assert_eq!(eval(&e, &a).value(), eval(&e, &b).value());
        let e2 = cr_graph_expr(1, 4);
        assert_ne!(eval(&e2, &star(3)).value(), eval(&e2, &path(4)).value());
    }

    #[test]
    fn k_wl_expr_is_gel_k_plus_1() {
        let e = k_wl_expr(2, 1, 2);
        let r = analyze(&e);
        assert_eq!(r.fragment, Fragment::Gel(3));
        assert_eq!(r.width, 3);
    }

    #[test]
    fn two_wl_expr_matches_2fwl_partition() {
        for g in [path(5), cycle(5), star(3)] {
            let rounds = 3;
            let e = k_wl_expr(2, 1, rounds);
            let t = eval(&e, &g);
            let part = t.value_partition();
            let c = k_wl(&[&g], 2, WlVariant::Folklore, Some(rounds));
            assert!(partitions_match(&part, &c.colors[0]), "2-WL simulation diverged on {g:?}");
        }
    }

    #[test]
    fn two_wl_graph_expr_separates_cr_blind_pair() {
        let (a, b) = cr_blind_pair();
        let e = k_wl_graph_expr(2, 1, 4);
        assert_ne!(
            eval(&e, &a).value(),
            eval(&e, &b).value(),
            "a GEL_3 expression separates C6 from C3⊎C3 (slide 66)"
        );
    }
}
