//! A textual surface syntax for `GEL(Ω,Θ)` expressions.
//!
//! The grammar mirrors the paper's notation as closely as ASCII allows:
//!
//! ```text
//! expr  := 'lab' INT '(' var ')'            // lab0(x1)       — Lab_j(x_i)
//!        | 'labvec' INT '(' var ')'         // labvec3(x1)    — full ℝ^d label
//!        | 'E' '(' var ',' var ')'          // E(x1,x2)
//!        | '1[' var ('=' | '!=') var ']'    // 1[x1=x2]
//!        | 'const' '[' NUM {',' NUM} ']'    // const[1,0]
//!        | FUNC '(' expr {',' expr} ')'     // relu(e), concat(e,f), …
//!        | AGG '_' '{' var {',' var} '}' '(' expr [ '|' expr ] ')'
//!                                           // sum_{x2}(e | E(x1,x2))
//! var   := 'x' INT                          // 1-based
//! FUNC  := 'relu' | 'sigmoid' | 'tanh' | 'sign' | 'step' | 'id'
//!        | 'clipped_relu' | 'concat' | 'add' | 'mul'
//!        | 'scale' '[' NUM ']' | 'proj' '[' INT ',' INT ']'
//!        | 'hash' '[' INT ']'
//! AGG   := 'sum' | 'mean' | 'max' | 'min'
//! ```
//!
//! `linear` functions carry weight matrices and are built
//! programmatically (see [`crate::ast::build`] and
//! [`crate::architectures`]); they round-trip through serde instead.

use std::fmt;

use gel_tensor::Activation;

use crate::ast::{build, CmpOp, Expr};
use crate::func::{Agg, Func};
use crate::table::Var;

/// A parse error with byte position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input.
    pub pos: usize,
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a `GEL(Ω,Θ)` expression; the result is validated
/// ([`Expr::validate`]) before being returned.
pub fn parse(input: &str) -> Result<Expr, ParseError> {
    let mut p = Parser { s: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let e = p.expr()?;
    p.skip_ws();
    if p.pos != p.s.len() {
        return Err(p.err("trailing input"));
    }
    e.validate().map_err(|te| ParseError { pos: 0, msg: te.to_string() })?;
    Ok(e)
}

struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError { pos: self.pos, msg: msg.to_string() }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), ParseError> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn try_eat(&mut self, c: u8) -> bool {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> String {
        self.skip_ws();
        let start = self.pos;
        while self
            .peek()
            .map(|c| {
                c.is_ascii_alphabetic()
                    || c == b'_' && {
                        // Stop an identifier before '_{' which begins aggregation vars.
                        self.s.get(self.pos + 1) != Some(&b'{')
                    }
            })
            .unwrap_or(false)
        {
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.s[start..self.pos]).into_owned()
    }

    fn integer(&mut self) -> Result<usize, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.peek().map(|c| c.is_ascii_digit()).unwrap_or(false) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected an integer"));
        }
        std::str::from_utf8(&self.s[start..self.pos])
            .unwrap()
            .parse()
            .map_err(|_| self.err("integer out of range"))
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        if self.peek() == Some(b'-') || self.peek() == Some(b'+') {
            self.pos += 1;
        }
        while self
            .peek()
            .map(|c| {
                c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'-' || c == b'+'
            })
            .unwrap_or(false)
        {
            // Only allow sign after an exponent marker.
            if (self.s[self.pos] == b'-' || self.s[self.pos] == b'+')
                && (self.pos == 0 || !matches!(self.s.get(self.pos - 1), Some(b'e') | Some(b'E')))
            {
                break;
            }
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected a number"));
        }
        std::str::from_utf8(&self.s[start..self.pos])
            .unwrap()
            .parse()
            .map_err(|_| self.err("malformed number"))
    }

    fn var(&mut self) -> Result<Var, ParseError> {
        self.skip_ws();
        if self.peek() != Some(b'x') {
            return Err(self.err("expected a variable like x1"));
        }
        self.pos += 1;
        let i = self.integer()?;
        if i == 0 || i > u8::MAX as usize {
            return Err(self.err("variable index out of range (1-based)"));
        }
        Ok(i as Var)
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.skip_ws();
        // 1[...] equality atom.
        if self.peek() == Some(b'1') && self.s.get(self.pos + 1) == Some(&b'[') {
            self.pos += 2;
            let a = self.var()?;
            self.skip_ws();
            let op = if self.try_eat(b'=') {
                CmpOp::Eq
            } else if self.peek() == Some(b'!') && self.s.get(self.pos + 1) == Some(&b'=') {
                self.pos += 2;
                CmpOp::Ne
            } else {
                return Err(self.err("expected '=' or '!='"));
            };
            let b = self.var()?;
            self.eat(b']')?;
            return Ok(Expr::Cmp { a, op, b });
        }

        let name = self.ident();
        if name.is_empty() {
            return Err(self.err("expected an expression"));
        }
        match name.as_str() {
            "E" => {
                self.eat(b'(')?;
                let from = self.var()?;
                self.eat(b',')?;
                let to = self.var()?;
                self.eat(b')')?;
                Ok(Expr::Edge { from, to })
            }
            "lab" => {
                let j = self.integer()?;
                self.eat(b'(')?;
                let var = self.var()?;
                self.eat(b')')?;
                Ok(Expr::Label { j, var })
            }
            "labvec" => {
                let dim = self.integer()?;
                self.eat(b'(')?;
                let var = self.var()?;
                self.eat(b')')?;
                Ok(Expr::LabelVec { var, dim })
            }
            "const" => {
                self.eat(b'[')?;
                let mut values = vec![self.number()?];
                while self.try_eat(b',') {
                    values.push(self.number()?);
                }
                self.eat(b']')?;
                Ok(Expr::Const { values })
            }
            "sum" | "mean" | "max" | "min" => {
                let agg = match name.as_str() {
                    "sum" => Agg::Sum,
                    "mean" => Agg::Mean,
                    "max" => Agg::Max,
                    _ => Agg::Min,
                };
                self.eat(b'_')?;
                self.eat(b'{')?;
                let mut over = vec![self.var()?];
                while self.try_eat(b',') {
                    over.push(self.var()?);
                }
                self.eat(b'}')?;
                self.eat(b'(')?;
                let value = self.expr()?;
                let guard = if self.try_eat(b'|') { Some(self.expr()?) } else { None };
                self.eat(b')')?;
                Ok(build::agg_over(agg, over, value, guard))
            }
            "relu" | "sigmoid" | "tanh" | "sign" | "step" | "id" | "clipped_relu" => {
                let act = match name.as_str() {
                    "relu" => Activation::ReLU,
                    "sigmoid" => Activation::Sigmoid,
                    "tanh" => Activation::Tanh,
                    "sign" => Activation::Sign,
                    "step" => Activation::Step,
                    "clipped_relu" => Activation::ClippedReLU,
                    _ => Activation::Identity,
                };
                let args = self.args()?;
                Ok(Expr::Apply { func: Func::Act(act), args })
            }
            "concat" => {
                let args = self.args()?;
                Ok(Expr::Apply { func: Func::Concat, args })
            }
            "add" | "mul" => {
                let args = self.args()?;
                if args.is_empty() {
                    return Err(self.err("add/mul need at least one argument"));
                }
                let dim = args[0].dim();
                let func = if name == "add" {
                    Func::Add { arity: args.len(), dim }
                } else {
                    Func::Mul { arity: args.len(), dim }
                };
                Ok(Expr::Apply { func, args })
            }
            "scale" => {
                self.eat(b'[')?;
                let s = self.number()?;
                self.eat(b']')?;
                let args = self.args()?;
                Ok(Expr::Apply { func: Func::Scale(s), args })
            }
            "proj" => {
                self.eat(b'[')?;
                let start = self.integer()?;
                self.eat(b',')?;
                let len = self.integer()?;
                self.eat(b']')?;
                let args = self.args()?;
                Ok(Expr::Apply { func: Func::Proj { start, len }, args })
            }
            "hash" => {
                self.eat(b'[')?;
                let seed = self.integer()? as u64;
                self.eat(b']')?;
                let args = self.args()?;
                Ok(Expr::Apply { func: Func::Hash { seed }, args })
            }
            other => Err(self.err(&format!("unknown function or form {other:?}"))),
        }
    }

    fn args(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.eat(b'(')?;
        let mut args = vec![self.expr()?];
        while self.try_eat(b',') {
            args.push(self.expr()?);
        }
        self.eat(b')')?;
        Ok(args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::build::*;
    use crate::eval::eval;
    use gel_graph::families::star;

    #[test]
    fn parses_atoms() {
        assert_eq!(parse("lab0(x1)").unwrap(), lab(0, 1));
        assert_eq!(parse("E(x1,x2)").unwrap(), edge(1, 2));
        assert_eq!(parse("1[x1=x2]").unwrap(), eq(1, 2));
        assert_eq!(parse("1[x1!=x2]").unwrap(), ne(1, 2));
        assert_eq!(parse("const[1,0,2.5]").unwrap(), constant(vec![1.0, 0.0, 2.5]));
        assert_eq!(parse("labvec3(x2)").unwrap(), lab_vec(2, 3));
    }

    #[test]
    fn parses_mpnn_layer() {
        let e = parse("relu(add(lab0(x1), sum_{x2}(lab0(x2) | E(x1,x2))))").unwrap();
        let expect = relu(add2(lab(0, 1), nbr_agg(Agg::Sum, 1, 2, lab(0, 2))));
        assert_eq!(e, expect);
    }

    #[test]
    fn parses_multi_var_aggregation() {
        let e = parse("sum_{x1,x2,x3}(mul(E(x1,x2), E(x2,x3), E(x1,x3)))").unwrap();
        assert!(e.free_vars().is_empty());
        assert_eq!(e.all_vars().len(), 3);
    }

    #[test]
    fn display_parse_roundtrip() {
        let exprs = [
            "lab0(x1)",
            "sum_{x2}(lab0(x2) | E(x1,x2))",
            "mean_{x1}(mul(lab0(x1),lab0(x1)))",
            "concat(lab0(x1),lab1(x1))",
            "hash[7](lab0(x1))",
        ];
        for s in exprs {
            let e = parse(s).unwrap();
            let back = parse(&e.to_string()).unwrap();
            assert_eq!(e, back, "roundtrip failed for {s}");
        }
    }

    #[test]
    fn parsed_expression_evaluates() {
        let g = star(3);
        let e = parse("sum_{x2}(const[1] | E(x1,x2))").unwrap();
        let t = eval(&e, &g);
        assert_eq!(t.cell(&[0]), &[3.0]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("frobnicate(x1)").is_err());
        assert!(parse("lab0(y1)").is_err());
        assert!(parse("sum_{}(lab0(x1))").is_err());
        assert!(parse("lab0(x1) extra").is_err());
        assert!(parse("E(x1,x1)").is_err(), "validation rejects repeated vars");
        assert!(parse("1[x1<x2]").is_err());
    }

    #[test]
    fn rejects_zero_variable() {
        assert!(parse("lab0(x0)").is_err());
    }

    #[test]
    fn whitespace_insensitive() {
        let a = parse("sum_{x2}(lab0(x2)|E(x1,x2))").unwrap();
        let b = parse("  sum_{ x2 } ( lab0( x2 )  |  E( x1 , x2 ) ) ").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn negative_and_scientific_numbers() {
        assert_eq!(parse("const[-1.5,2e3]").unwrap(), constant(vec![-1.5, 2000.0]));
        let e = parse("scale[-0.5](lab0(x1))").unwrap();
        assert_eq!(e.dim(), 1);
    }
}
