//! Normal forms for `MPNN(Ω,Θ)` expressions (paper slide 55, after
//! Geerts–Steegmans–Van den Bussche, FoIKS 2022).
//!
//! The *normal form* interleaves function application and aggregation
//! in the classical layered way (slide 47):
//!
//! ```text
//! φ_t(x1) := F_t( φ_{t−1}(x1), agg^θ_{x2}( φ_{t−1}(x2) | E(x1,x2) ) )
//! ```
//!
//! i.e. every aggregation body depends *only* on the aggregated
//! variable. General MPNN expressions may aggregate bodies that mention
//! the anchor too, e.g. `sum_{x2}(concat(α(x1), β(x2)) | E(x1,x2))`.
//!
//! Scope of the implementation. The FoIKS theorem converts *every*
//! `MPNN(Ω, sum)` with σ = ReLU (exactly; and approximately on compact
//! domains for other cases). We implement the exact rewriting on the
//! **sum-separable fragment** — aggregation bodies that are trees of
//! `Concat`/`Linear`/`Scale`/`Add` over subexpressions each anchored at
//! a single variable. This fragment covers every architecture compiled
//! by [`crate::architectures`] and every expression produced by
//! [`crate::random_expr`] with sum aggregation; for bodies that
//! genuinely entangle both variables non-linearly the function returns
//! `None`, mirroring the fact that the general theorem needs the
//! approximation route (E7 records this).
//!
//! The key algebraic identities (for the sum aggregator):
//!
//! * `Σ_{u∈N(v)} concat(a(v), b(u)) = concat(deg(v)·a(v), Σ_u b(u))`
//! * `Σ_{u∈N(v)} L(e(v,u)) = L(Σ_u e(v,u))` for linear `L`
//! * `deg(v) = Σ_{u∈N(v)} 1` — itself a normal-form aggregation.

use crate::ast::{build, Expr};
use crate::func::{Agg, Func};
use crate::table::Var;

/// True when `expr` is in layered normal form: every aggregation body's
/// free variables are exactly `{bound variable}` (or empty).
pub fn is_normal_form(expr: &Expr) -> bool {
    match expr {
        Expr::Label { .. }
        | Expr::LabelVec { .. }
        | Expr::Edge { .. }
        | Expr::Cmp { .. }
        | Expr::Const { .. } => true,
        Expr::Apply { args, .. } => args.iter().all(is_normal_form),
        Expr::Aggregate { over, value, guard, .. } => {
            let fv = value.free_vars();
            let only_bound = fv.iter().all(|v| over.contains(v));
            only_bound && is_normal_form(value) && guard.as_ref().is_none_or(|g| is_normal_form(g))
        }
        Expr::Shared(e) => is_normal_form(e),
    }
}

/// Rewrites an MPNN expression into normal form, preserving semantics
/// exactly. Returns `None` when the expression falls outside the
/// sum-separable fragment (see module docs).
pub fn to_normal_form(expr: &Expr) -> Option<Expr> {
    match expr {
        Expr::Label { .. }
        | Expr::LabelVec { .. }
        | Expr::Edge { .. }
        | Expr::Cmp { .. }
        | Expr::Const { .. } => Some(expr.clone()),
        // The rewrite rebuilds the tree, so unwrap the sharing.
        Expr::Shared(e) => to_normal_form(e),
        Expr::Apply { func, args } => {
            let args: Option<Vec<Expr>> = args.iter().map(to_normal_form).collect();
            Some(Expr::Apply { func: func.clone(), args: args? })
        }
        Expr::Aggregate { agg, over, value, guard } => {
            let value_nf = to_normal_form(value)?;
            let guard_nf = match guard {
                Some(g) => Some(Box::new(to_normal_form(g)?)),
                None => None,
            };
            let fv = value_nf.free_vars();
            let extra: Vec<Var> = fv.iter().copied().filter(|v| !over.contains(v)).collect();
            if extra.is_empty() {
                return Some(Expr::Aggregate {
                    agg: *agg,
                    over: over.clone(),
                    value: Box::new(value_nf),
                    guard: guard_nf,
                });
            }
            // Body mentions the anchor: only handled for Sum over a
            // single variable with a single anchor.
            if *agg != Agg::Sum || over.len() != 1 || extra.len() != 1 {
                return None;
            }
            let y = over[0];
            let anchor = extra[0];
            separate_sum(&value_nf, anchor, y, guard_nf.as_deref())
        }
    }
}

/// Rewrites `Σ_{y | guard} body(anchor, y)` into normal form given that
/// `body` is a Concat/Linear/Scale/Add tree over single-anchored parts.
fn separate_sum(body: &Expr, anchor: Var, y: Var, guard: Option<&Expr>) -> Option<Expr> {
    // deg(anchor) under the same guard (itself normal form).
    let count = Expr::Aggregate {
        agg: Agg::Sum,
        over: vec![y],
        value: Box::new(build::constant(vec![1.0])),
        guard: guard.map(|g| Box::new(g.clone())),
    };
    let sum_under_guard = |e: Expr| Expr::Aggregate {
        agg: Agg::Sum,
        over: vec![y],
        value: Box::new(e),
        guard: guard.map(|g| Box::new(g.clone())),
    };

    let fv = body.free_vars();
    if fv.iter().all(|&v| v == y) {
        // Pure message: already separable.
        return Some(sum_under_guard(body.clone()));
    }
    if fv.iter().all(|&v| v == anchor) {
        // Constant w.r.t. the sum: Σ a(v) = deg(v) · a(v).
        let d = body.dim();
        let deg_broadcast = if d == 1 {
            count
        } else {
            // Broadcast deg to dimension d with a linear map 1 → d of ones.
            build::apply(
                Func::Linear { weights: gel_tensor::Matrix::filled(1, d, 1.0), bias: vec![0.0; d] },
                vec![count],
            )
        };
        return Some(build::apply(
            Func::Mul { arity: 2, dim: d },
            vec![deg_broadcast, body.clone()],
        ));
    }
    // Mixed: distribute over Concat / Linear / Scale / Add.
    match body {
        Expr::Apply { func: Func::Concat, args } => {
            let parts: Option<Vec<Expr>> =
                args.iter().map(|a| separate_sum(a, anchor, y, guard)).collect();
            Some(build::apply(Func::Concat, parts?))
        }
        Expr::Apply { func: func @ Func::Linear { .. }, args } => {
            // Linear commutes with Σ: L(Σ concat(args)) — but the bias is
            // added once per summand, i.e. deg times. Rewrite
            // Σ L(e) = L₀(Σ e) + deg·b with L₀ the bias-free map.
            let Func::Linear { weights, bias } = func else { unreachable!() };
            let inner = build::apply(Func::Concat, args.clone());
            let inner_sum = separate_sum(&inner, anchor, y, guard)?;
            let l0 = build::apply(
                Func::Linear { weights: weights.clone(), bias: vec![0.0; bias.len()] },
                vec![inner_sum],
            );
            let d = bias.len();
            let bias_term = build::apply(
                Func::Linear { weights: gel_tensor::Matrix::row_vector(bias), bias: vec![0.0; d] },
                vec![count],
            );
            Some(build::apply(Func::Add { arity: 2, dim: d }, vec![l0, bias_term]))
        }
        Expr::Apply { func: Func::Scale(s), args } => {
            let inner = build::apply(Func::Concat, args.clone());
            let inner_sum = separate_sum(&inner, anchor, y, guard)?;
            Some(build::apply(Func::Scale(*s), vec![inner_sum]))
        }
        Expr::Apply { func: Func::Add { arity, dim }, args } => {
            let parts: Option<Vec<Expr>> =
                args.iter().map(|a| separate_sum(a, anchor, y, guard)).collect();
            Some(build::apply(Func::Add { arity: *arity, dim: *dim }, parts?))
        }
        _ => None, // non-linear entanglement of anchor and message
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::build::*;
    use crate::eval::eval;
    use gel_graph::families::{cycle, path, star};
    use gel_graph::Graph;

    fn assert_nf_equivalent(e: &Expr, graphs: &[Graph]) {
        let nf = to_normal_form(e).expect("expression should be separable");
        assert!(is_normal_form(&nf), "result not in normal form: {nf}");
        for g in graphs {
            let a = eval(e, g);
            let b = eval(&nf, g);
            assert!(a.approx_eq(&b, 1e-9), "semantics changed on {g:?}: {e} vs {nf}");
        }
    }

    fn corpus() -> Vec<Graph> {
        vec![path(5), star(4), cycle(6).with_labels(vec![1.0, 2.0, 1.0, 2.0, 1.0, 2.0], 1)]
    }

    #[test]
    fn already_normal_is_fixed_point() {
        let e = nbr_agg(Agg::Sum, 1, 2, lab(0, 2));
        assert!(is_normal_form(&e));
        assert_eq!(to_normal_form(&e).unwrap(), e);
    }

    #[test]
    fn concat_body_is_separated() {
        // Σ_{x2}( concat(lab(x1), lab(x2)) | E ) — the paper's general
        // MPNN aggregation (slide 45's example).
        let e = nbr_agg(Agg::Sum, 1, 2, apply(Func::Concat, vec![lab(0, 1), lab(0, 2)]));
        assert!(!is_normal_form(&e));
        assert_nf_equivalent(&e, &corpus());
    }

    #[test]
    fn anchor_only_body_becomes_degree_product() {
        // Σ_{x2}( lab(x1) | E ) = deg(x1)·lab(x1).
        let e = nbr_agg(Agg::Sum, 1, 2, lab(0, 1));
        assert_nf_equivalent(&e, &corpus());
    }

    #[test]
    fn linear_with_bias_is_handled() {
        // Σ L(concat(a(x1), b(x2))) needs the deg·bias correction.
        let lin = Func::Linear {
            weights: gel_tensor::Matrix::from_rows(&[&[2.0], &[3.0]]),
            bias: vec![7.0],
        };
        let e = nbr_agg(Agg::Sum, 1, 2, apply(lin, vec![lab(0, 1), lab(0, 2)]));
        assert_nf_equivalent(&e, &corpus());
    }

    #[test]
    fn nested_layers_are_normalized() {
        // Two layers where the inner aggregation is itself non-normal.
        let inner = nbr_agg(Agg::Sum, 2, 1, apply(Func::Concat, vec![lab(0, 2), lab(0, 1)]));
        let outer = nbr_agg(Agg::Sum, 1, 2, inner);
        assert_nf_equivalent(&outer, &corpus());
    }

    #[test]
    fn scale_and_add_distribute() {
        let body = apply(
            Func::Add { arity: 2, dim: 1 },
            vec![
                apply(Func::Scale(2.0), vec![lab(0, 1)]),
                apply(Func::Scale(-1.0), vec![lab(0, 2)]),
            ],
        );
        let e = nbr_agg(Agg::Sum, 1, 2, body);
        assert_nf_equivalent(&e, &corpus());
    }

    #[test]
    fn entangled_body_returns_none() {
        // Σ mul(a(x1), b(x2)): multiplicative entanglement is outside
        // the exact fragment (needs the ReLU approximation route).
        let e = nbr_agg(Agg::Sum, 1, 2, mul2(lab(0, 1), lab(0, 2)));
        assert!(to_normal_form(&e).is_none());
    }

    #[test]
    fn mean_with_anchor_returns_none() {
        let e = nbr_agg(Agg::Mean, 1, 2, apply(Func::Concat, vec![lab(0, 1), lab(0, 2)]));
        assert!(to_normal_form(&e).is_none());
    }

    #[test]
    fn architectures_normalize() {
        use crate::architectures::{gnn101_vertex_expr, Gnn101Layer};
        use gel_tensor::Activation;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        let layers: Vec<Gnn101Layer> = vec![
            Gnn101Layer::random(1, 3, Activation::ReLU, &mut rng),
            Gnn101Layer::random(3, 2, Activation::ReLU, &mut rng),
        ];
        let e = gnn101_vertex_expr(&layers, 1);
        assert_nf_equivalent(&e, &corpus());
    }
}
