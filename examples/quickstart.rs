//! Quickstart: the paper in five minutes.
//!
//! 1. write an embedding as a `GEL(Ω,Θ)` expression,
//! 2. run the *recipe* to get its fragment and WL bound,
//! 3. evaluate it on graphs,
//! 4. watch the bound bite on a colour-refinement-blind pair,
//! 5. buy more power with a third variable.
//!
//! Run: `cargo run --example quickstart`

use gelib::graph::families::{cr_blind_pair, star};
use gelib::lang::ast::build;
use gelib::lang::{analyze, eval, parse, Agg};
use gelib::wl::cr_equivalent;

fn main() {
    // 1. The degree embedding, in the paper's syntax (slide 45):
    //    deg(v) = sum_{x2}( 1 | E(x1, x2) ).
    let deg = parse("sum_{x2}(const[1] | E(x1,x2))").expect("valid expression");
    println!("expression: {deg}");

    // 2. The recipe (slide 35): fragment + separation-power bound.
    let report = analyze(&deg);
    println!("recipe:     {report}");

    // 3. Evaluate on a star: the hub has degree 3, the leaves 1.
    let g = star(3);
    let table = eval(&deg, &g);
    for v in g.vertices() {
        println!("  deg(v{v}) = {}", table.cell(&[v])[0]);
    }

    // 4. The bound bites: C6 and C3 ⊎ C3 are colour-refinement
    //    equivalent (slide 50), so NO expression in MPNN(Ω,Θ) can tell
    //    them apart — try a whole graph-level embedding.
    let (c6, triangles) = cr_blind_pair();
    assert!(cr_equivalent(&c6, &triangles));
    let graph_emb =
        parse("sum_{x1}(mul(sum_{x2}(const[1] | E(x1,x2)), sum_{x2}(const[1] | E(x1,x2))))")
            .expect("valid");
    let a = eval(&graph_emb, &c6);
    let b = eval(&graph_emb, &triangles);
    println!(
        "\nMPNN on CR-blind pair:  C6 -> {:?},  C3+C3 -> {:?}  (equal, as the theorem demands)",
        a.value(),
        b.value()
    );
    assert_eq!(a.value(), b.value());

    // 5. A third variable buys real power (slide 66): count triangles.
    let tri = build::agg_over(
        Agg::Sum,
        vec![1, 2, 3],
        build::mul2(build::mul2(build::edge(1, 2), build::edge(2, 3)), build::edge(1, 3)),
        None,
    );
    let report = analyze(&tri);
    println!("\nGEL_3 triangle counter: {report}");
    let a = eval(&tri, &c6);
    let b = eval(&tri, &triangles);
    println!(
        "GEL_3 on the same pair: C6 -> {:?},  C3+C3 -> {:?}  (separated!)",
        a.value(),
        b.value()
    );
    assert_ne!(a.value(), b.value());
}
