//! Molecule property prediction — the paper's first motivating
//! application (slide 7, after Stokes et al.'s antibiotic discovery):
//! learn a graph embedding `ξ : molecules → {active, inactive}` by
//! empirical risk minimization (slides 16–19).
//!
//! The workload is synthetic (DESIGN.md §4): valence-respecting random
//! molecules over C/N/O/H whose ground-truth property — "contains a
//! ring with at least two heteroatoms" — is structural and
//! isomorphism-invariant, just like real activity targets.
//!
//! Run: `cargo run --release --example molecule_property`

use gelib::gnn::{eval_graph_accuracy, train_graph_model, GraphModel};
use gelib::graph::datasets::balanced_molecule_dataset_by;
use gelib::graph::Graph;
use gelib::tensor::{Activation, Adam, Loss};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2023);

    // Training set T = {(G_i, Ψ(G_i))} (slide 16).
    let molecules = balanced_molecule_dataset_by(150, 9, |m| m.hetero_pair, &mut rng);
    let data: Vec<(Graph, Vec<f64>)> =
        molecules.iter().map(|m| (m.graph.clone(), vec![f64::from(m.hetero_pair)])).collect();
    let (train, test) = data.split_at(120);
    let actives = train.iter().filter(|(_, t)| t[0] > 0.5).count();
    println!("dataset: {} train / {} test, {} actives in train", train.len(), test.len(), actives);

    // Hypothesis class F: 3-layer GIN graph classifiers (slide 17).
    let mut model = GraphModel::gin(4, 16, 2, 1, Activation::Identity, &mut rng);
    model.readout = gelib::gnn::Readout::Mean;

    // Loss L: binary cross entropy (slide 18); optimizer: Adam (slide 20).
    let mut opt = Adam::new(0.02);
    let log = train_graph_model(&mut model, train, Loss::BceWithLogits, &mut opt, 400);

    println!("final training loss: {:.4}", log.final_loss());
    println!("train accuracy:      {:.3}", eval_graph_accuracy(&model, train));
    println!("test  accuracy:      {:.3}", eval_graph_accuracy(&model, test));

    // Show a few predictions.
    println!("\nsample predictions (logit > 0 ⇒ active):");
    for (i, (g, target)) in test.iter().take(6).enumerate() {
        let logit = model.infer(g)[(0, 0)];
        println!(
            "  molecule {i}: {} atoms, predicted {:+.2} → {}, truth {}",
            g.num_vertices(),
            logit,
            if logit > 0.0 { "active" } else { "inactive" },
            if target[0] > 0.5 { "active" } else { "inactive" },
        );
    }
}
