//! Citation-network topic classification — the paper's second
//! motivating application (slide 8): learn a *vertex* embedding
//! `ξ : G → (V → topics)` semi-supervised, from a handful of labelled
//! papers.
//!
//! Run: `cargo run --release --example citation_classification`

use gelib::gnn::{eval_node_accuracy, train_node_classifier, GnnAgg, VertexModel};
use gelib::graph::datasets::citation_network;
use gelib::graph::Vertex;
use gelib::tensor::{Adam, Matrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2023);

    // A synthetic Cora: 3 topics, label-correlated noisy features,
    // papers citing mostly within their topic.
    let net = citation_network(3, 60, 0.12, 0.008, 0.3, &mut rng);
    let g = &net.graph;
    let n = g.num_vertices();
    println!(
        "citation graph: {} papers, {} citations, {} topics",
        n,
        g.num_edges_undirected(),
        net.num_topics
    );

    let mut targets = Matrix::zeros(n, net.num_topics);
    for v in 0..n {
        targets[(v, net.topic[v])] = 1.0;
    }

    // Only 15% of the papers come with a known topic.
    let mut ids: Vec<Vertex> = (0..n as u32).collect();
    ids.shuffle(&mut rng);
    let (train_mask, test_mask) = ids.split_at(n * 15 / 100);
    println!("labelled papers: {} of {}", train_mask.len(), n);

    let mut model =
        VertexModel::gnn101(net.num_topics, 16, 2, net.num_topics, GnnAgg::Mean, &mut rng);
    let mut opt = Adam::new(0.01);
    let log = train_node_classifier(&mut model, g, &targets, train_mask, &mut opt, 250);

    println!("final training loss: {:.4}", log.final_loss());
    println!("train accuracy:      {:.3}", eval_node_accuracy(&model, g, &targets, train_mask));
    println!(
        "test  accuracy:      {:.3}  (chance = {:.3})",
        eval_node_accuracy(&model, g, &targets, test_mask),
        1.0 / net.num_topics as f64
    );
}
