//! The logic ↔ language bridge (paper slides 51, 54): write a unary
//! query in graded modal logic, compile it to an `MPNN(Ω,Θ)`
//! expression, embed it into guarded C², and watch all three agree —
//! then see the colour-refinement ceiling shared by all of them.
//!
//! Run: `cargo run --release --example logic_and_language`

use gelib::graph::random::{erdos_renyi, with_random_one_hot_labels};
use gelib::lang::analysis::analyze;
use gelib::lang::eval::eval;
use gelib::logic::c2::gml_to_guarded_c2;
use gelib::logic::{gml_to_mpnn, parse_gml};
use gelib::wl::{color_refinement, CrOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // "Some neighbour is a P0-vertex with at least two P1-neighbours."
    let formula = parse_gml("<1>(P0 & <2>P1)").expect("valid GML");
    println!("GML query:       {formula}");
    println!("modal depth:     {}", formula.modal_depth());

    // Compile to the embedding language (slide 54, Barceló et al.).
    let expr = gml_to_mpnn(&formula);
    println!("as MPNN expr:    {} AST nodes", expr.size());
    println!("recipe:          {}", analyze(&expr));

    // Embed into guarded C² (slide 51).
    let c2 = gml_to_guarded_c2(&formula, 1);
    println!("guarded C²:      guarded = {}", c2.is_guarded());

    // All three semantics agree on random labelled graphs.
    let mut rng = StdRng::seed_from_u64(2023);
    let g = with_random_one_hot_labels(&erdos_renyi(12, 0.3, &mut rng), 2, &mut rng);
    let by_gml = formula.eval(&g);
    let by_expr = eval(&expr, &g);
    let by_c2 = c2.eval_unary(&g);
    println!("\nvertex | GML | MPNN expr | guarded C²");
    for v in g.vertices() {
        let e = by_expr.cell(&[v])[0];
        println!(
            "  v{v:<4} | {}   | {}         | {}",
            u8::from(by_gml[v as usize]),
            e,
            u8::from(by_c2[v as usize]),
        );
        assert_eq!(e, f64::from(by_gml[v as usize]));
        assert_eq!(by_gml[v as usize], by_c2[v as usize]);
    }

    // The shared ceiling: same stable colour ⇒ same truth value.
    let colors = color_refinement(&[&g], CrOptions::default());
    let mut checked = 0;
    for v in g.vertices() {
        for w in g.vertices() {
            if colors.colors[0][v as usize] == colors.colors[0][w as usize] {
                assert_eq!(by_gml[v as usize], by_gml[w as usize]);
                checked += 1;
            }
        }
    }
    println!(
        "\nCR ceiling respected on {checked} colour-equivalent vertex pairs \
         (slide 51: ρ(CR) = ρ(guarded C²) bounds them all)."
    );
}
