//! A tour of the Weisfeiler–Leman hierarchy (paper slide 65):
//! `ρ(CR) = ρ(1-WL) ⊋ ρ(2-WL) ⊋ ρ(3-WL) ⊋ ⋯ ⊋ ρ(iso)`, witnessed on
//! the classical hard pairs.
//!
//! Run: `cargo run --release --example wl_hierarchy`

use gelib::graph::are_isomorphic;
use gelib::graph::cfi::cfi_pair_k4;
use gelib::graph::families::{cr_blind_pair, srg_16_6_2_2_pair};
use gelib::wl::{distinguishing_level, k_wl_equivalent, WlVariant};

fn main() {
    let pairs = vec![
        ("C6 vs C3+C3 (2-regular pair)", cr_blind_pair()),
        ("Shrikhande vs 4x4 Rook (srg(16,6,2,2))", srg_16_6_2_2_pair()),
        ("CFI(K4) vs twisted CFI(K4)", cfi_pair_k4()),
    ];

    println!(
        "pair                                      | iso | 1-WL | 2-WL | 3-WL | first separated at"
    );
    println!(
        "------------------------------------------|-----|------|------|------|-------------------"
    );
    for (name, (g, h)) in &pairs {
        let iso = are_isomorphic(g, h);
        let eqs: Vec<bool> =
            (1..=3).map(|k| k_wl_equivalent(g, h, k, WlVariant::Folklore)).collect();
        let level = distinguishing_level(g, h, 3);
        println!(
            "{name:<42}| {}   | {}    | {}    | {}    | {}",
            if iso { "≅" } else { "≇" },
            if eqs[0] { "≡" } else { "≠" },
            if eqs[1] { "≡" } else { "≠" },
            if eqs[2] { "≡" } else { "≠" },
            level.map_or("beyond 3-WL".to_string(), |k| format!("{k}-WL")),
        );
    }

    println!();
    println!("Reading the table (slide 65):");
    println!(" * two triangles fool colour refinement but not 2-WL;");
    println!(" * the strongly regular pair fools 2-WL but not 3-WL;");
    println!(" * the CFI pair over K4 (treewidth 3) also needs 3-WL —");
    println!("   Cai–Fürer–Immerman give such a pair for EVERY level k.");
}
