//! Link prediction — the paper's third motivating application
//! (slide 9): a *2-vertex* embedding `ξ : G → (V² → [0,1])` scoring
//! whether two people will connect, trained on held-out edges.
//!
//! Run: `cargo run --release --example link_prediction`

use gelib::gnn::{GnnAgg, LinkPredictor, VertexModel};
use gelib::graph::datasets::social_network;
use gelib::graph::random::with_random_real_labels;
use gelib::graph::Vertex;
use gelib::tensor::Adam;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2023);

    // Two communities of 40; 20% of the edges are hidden and must be
    // recovered.
    let net = social_network(&[40, 40], 0.3, 0.015, 0.2, &mut rng);
    // Constant labels would embed every vertex identically; random
    // vertex features break the symmetry so the encoder can align
    // embeddings of well-connected people.
    let g = &with_random_real_labels(&net.graph, 8, &mut rng);
    println!(
        "social graph: {} people, {} observed ties, {} held-out pairs",
        g.num_vertices(),
        g.num_edges_undirected(),
        net.positives.len() * 2
    );

    // Training pairs: the observed edges and sampled non-edges.
    let pos: Vec<(Vertex, Vertex)> = g.edges_undirected().collect();
    let n = g.num_vertices();
    let mut neg = Vec::new();
    while neg.len() < pos.len() {
        let u = rng.gen_range(0..n) as Vertex;
        let v = rng.gen_range(0..n) as Vertex;
        if u != v && !g.has_edge(u, v) {
            neg.push((u, v));
        }
    }
    let pairs: Vec<((Vertex, Vertex), f64)> =
        pos.iter().map(|&p| (p, 1.0)).chain(neg.iter().map(|&p| (p, 0.0))).collect();

    let mut lp = LinkPredictor { encoder: VertexModel::gnn101(8, 16, 2, 8, GnnAgg::Sum, &mut rng) };
    let mut opt = Adam::new(0.01);
    for epoch in 0..250 {
        let loss = lp.train_epoch(g, &pairs, &mut opt);
        if epoch % 50 == 0 {
            println!("epoch {epoch:>3}: loss {loss:.4}");
        }
    }

    let acc = lp.eval_accuracy(g, &net.positives, &net.negatives);
    println!("\nheld-out link accuracy: {acc:.3}  (chance = 0.500)");

    // Show a few scored pairs.
    let scores = lp.score(g, &net.positives[..3.min(net.positives.len())]);
    for ((u, v), s) in net.positives.iter().zip(scores) {
        println!("  hidden tie ({u},{v}) scored {s:.3}");
    }
}
