//! The paper's *recipe* in action (slides 34–35, 63, 67): cast an
//! embedding method as a `GEL(Ω,Θ)` expression and read off an upper
//! bound on its separation power — no bespoke proof needed.
//!
//! Run: `cargo run --release --example expressiveness_recipe`

use gelib::lang::analysis::analyze;
use gelib::lang::architectures::{
    gcn_vertex_expr, gin_vertex_expr, gnn101_vertex_expr, sage_vertex_expr,
    triangles_at_vertex_expr, GcnLayer, GinLayer, Gnn101Layer, SageLayer,
};
use gelib::lang::parse;
use gelib::lang::wl_sim::k_wl_expr;
use gelib::tensor::{Activation, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    println!("method                  | fragment    | width | separation power bound");
    println!("------------------------|-------------|-------|------------------------");

    let show = |name: &str, expr: &gelib::lang::Expr| {
        let r = analyze(expr);
        let frag = match r.fragment {
            gelib::lang::Fragment::Mpnn => "MPNN(Ω,Θ)".to_string(),
            gelib::lang::Fragment::Gel(k) => format!("GEL_{k}(Ω,Θ)"),
        };
        println!("{name:<24}| {frag:<12}| {:<6}| ⊆ ρ({})", r.width, r.bound);
    };

    // Architectures, compiled from their layer definitions.
    let gnn101 = gnn101_vertex_expr(
        &[
            Gnn101Layer::random(1, 4, Activation::ReLU, &mut rng),
            Gnn101Layer::random(4, 4, Activation::ReLU, &mut rng),
        ],
        1,
    );
    show("GNN-101 (2 layers)", &gnn101);

    let gin = gin_vertex_expr(
        &[GinLayer {
            eps: 0.0,
            w: Matrix::identity(1),
            bias: vec![0.0],
            activation: Activation::ReLU,
        }],
        1,
    );
    show("GIN", &gin);

    let gcn = gcn_vertex_expr(
        &[GcnLayer { w: Matrix::identity(1), bias: vec![0.0], activation: Activation::ReLU }],
        1,
    );
    show("GCN (mean)", &gcn);

    let sage = sage_vertex_expr(
        &[SageLayer { w: Matrix::zeros(2, 1), bias: vec![0.0], activation: Activation::Sigmoid }],
        1,
    );
    show("GraphSage (max)", &sage);

    // Hand-written expressions.
    let deg = parse("sum_{x2}(const[1] | E(x1,x2))").unwrap();
    show("degree", &deg);

    let tri = triangles_at_vertex_expr();
    show("triangle counter", &tri);

    let two_wl = k_wl_expr(2, 1, 3);
    show("2-WL simulator", &two_wl);

    println!();
    println!("This is slide 67's \"Back to ML\" placement, computed");
    println!("syntactically: guarded two-variable expressions sit under");
    println!("colour refinement; a k-variable expression sits under (k−1)-WL.");
}
