//! Offline stand-in for `serde`.
//!
//! This workspace derives `Serialize`/`Deserialize` on a few core types
//! (`Graph`, `Matrix`, the `Expr` AST) but builds in an environment
//! with no crates.io access, so the real serde cannot be fetched. The
//! derive macros re-exported here expand to nothing: the annotations
//! compile, no serialization code is generated, and nothing in the
//! build depends on it (the machine-readable outputs this workspace
//! produces — e.g. `BENCH_parallel.json` — are written with the
//! hand-rolled writer in `gel-bench`). Swapping this path dependency
//! back to crates.io serde restores full functionality without source
//! changes.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};
