//! A small, dependency-free subset of the `rand 0.8` API, vendored so
//! the workspace builds without network access.
//!
//! Only the surface this workspace uses is provided:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256\*\* generator seeded
//!   via SplitMix64 (`seed_from_u64`). The *stream differs* from
//!   upstream `rand`'s StdRng (which is ChaCha12); everything in this
//!   repository treats the RNG as an arbitrary deterministic source, so
//!   only stability across runs matters, not the exact stream.
//! * [`Rng::gen_range`] over integer and float ranges (half-open and
//!   inclusive), [`Rng::gen_bool`], [`Rng::gen`] for `f64`/`bool`.
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! Integer range sampling uses Lemire's multiply-shift; the modulo bias
//! is at most 2⁻⁶⁴ per draw, far below anything observable here.

#![warn(missing_docs)]

/// Low-level uniform bit generation.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic seeding.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self.as_dyn())
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value of the standard distribution of `T`
    /// (`f64` uniform on `[0, 1)`, `bool` fair coin).
    fn gen<T: distributions::Standard>(&mut self) -> T {
        T::sample(self.as_dyn())
    }

    #[doc(hidden)]
    fn as_dyn(&mut self) -> &mut dyn RngCore;
}

impl<R: RngCore> Rng for R {
    fn as_dyn(&mut self) -> &mut dyn RngCore {
        self
    }
}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
pub(crate) fn unit_f64(bits: u64) -> f64 {
    // 53 top bits → [0, 1) with full double precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator:
    /// xoshiro256\*\* (Blackman–Vigna), seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Range sampling and standard distributions.
pub mod distributions {
    use super::{unit_f64, RngCore};
    use std::ops::{Range, RangeInclusive};

    /// A range that can be sampled uniformly.
    pub trait SampleRange<T> {
        /// Draws one sample.
        fn sample_single(self, rng: &mut dyn RngCore) -> T;
    }

    /// Lemire multiply-shift: uniform integer in `[0, span)`.
    #[inline]
    fn below(rng: &mut dyn RngCore, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((rng.next_u64() as u128 * span as u128) >> 64) as u64
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single(self, rng: &mut dyn RngCore) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(below(rng, span) as $t)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single(self, rng: &mut dyn RngCore) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t; // full-width range
                    }
                    lo.wrapping_add(below(rng, span as u64) as $t)
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleRange<f64> for Range<f64> {
        fn sample_single(self, rng: &mut dyn RngCore) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            let u = unit_f64(rng.next_u64());
            self.start + u * (self.end - self.start)
        }
    }

    impl SampleRange<f64> for RangeInclusive<f64> {
        fn sample_single(self, rng: &mut dyn RngCore) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "cannot sample empty range");
            let u = unit_f64(rng.next_u64());
            lo + u * (hi - lo)
        }
    }

    /// Standard distribution of `T` (what [`crate::Rng::gen`] samples).
    pub trait Standard: Sized {
        /// Draws one sample.
        fn sample(rng: &mut dyn RngCore) -> Self;
    }

    impl Standard for f64 {
        fn sample(rng: &mut dyn RngCore) -> f64 {
            unit_f64(rng.next_u64())
        }
    }

    impl Standard for bool {
        fn sample(rng: &mut dyn RngCore) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Standard for u64 {
        fn sample(rng: &mut dyn RngCore) -> u64 {
            rng.next_u64()
        }
    }
}

/// Sequence-related helpers (`shuffle`, `choose`).
pub mod seq {
    use super::Rng;

    /// Extension methods for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0..=4usize);
            assert!(y <= 4);
            let f = rng.gen_range(-2.5..=2.5);
            assert!((-2.5..=2.5).contains(&f));
            let neg = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&neg));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn unit_interval_mean_is_plausible() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "astronomically unlikely identity");
    }
}
