//! A small, dependency-free subset of the `proptest` API, vendored so
//! the workspace's property tests run without network access.
//!
//! Provided surface (exactly what the workspace's tests use):
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]` and
//!   `arg in strategy` bindings;
//! * range strategies (`0u64..5_000`, `0.0f64..1.0`, `2usize..=20`);
//! * [`collection::vec`] with a fixed size or a size range;
//! * [`Strategy::prop_map`];
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`].
//!
//! Differences from upstream: inputs are generated from a fixed
//! deterministic seed sequence (no persistence files) and failing
//! cases are **not shrunk** — the panic message reports the case index
//! so a failure reproduces exactly by rerunning the test.

#![warn(missing_docs)]

use rand::rngs::StdRng;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { src: self, f }
    }
}

/// `prop_map` adaptor.
pub struct Map<S, F> {
    src: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn new_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.src.new_value(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),*)),* $(,)?) => {$(
        impl<$($s: Strategy),*> Strategy for ($($s,)*) {
            type Value = ($($s::Value,)*);
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)*) = self;
                ($($s.new_value(rng),)*)
            }
        }
    )*};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// Anything convertible into a length range for [`vec`].
    pub trait IntoSizeRange {
        /// Lower and upper (inclusive) length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(rng, self.min..=self.max);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Derives the RNG for case `case` of a test named `name`:
    /// deterministic, but decorrelated across tests.
    pub fn case_rng(name: &str, case: u32) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { ... }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::__rt::case_rng(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::new_value(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),*) $body)*
        }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0u32..5, 7usize)) {
            prop_assert_eq!(v.len(), 7);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn prop_map_applies(n in (1usize..4).prop_map(|k| k * 10)) {
            prop_assert!(n == 10 || n == 20 || n == 30);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..5)
            .map(|c| {
                let mut rng = crate::__rt::case_rng("t", c);
                rand::Rng::gen_range(&mut rng, 0u64..1000)
            })
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|c| {
                let mut rng = crate::__rt::case_rng("t", c);
                rand::Rng::gen_range(&mut rng, 0u64..1000)
            })
            .collect();
        assert_eq!(a, b);
    }
}
