//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The workspace annotates several core types with serde derives but
//! only exercises actual serialization in (removed) round-trip tests;
//! offline builds keep the annotations compiling by expanding them to
//! nothing. See `vendor/serde` for the rationale.

use proc_macro::TokenStream;

/// Expands to nothing; keeps `#[derive(Serialize)]` compiling offline.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; keeps `#[derive(Deserialize)]` compiling offline.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
