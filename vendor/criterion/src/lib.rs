//! A small, dependency-free subset of the `criterion` benchmark API,
//! vendored so `cargo bench` runs without network access.
//!
//! Semantics: every benchmark is auto-calibrated so one *sample* takes
//! ≳1 ms, then `sample_size` samples are timed and min/mean/max
//! per-iteration times reported. Results print as plain text and, when
//! `GEL_BENCH_JSON=<path>` is set (or `--bench-json <path>` is passed),
//! are additionally written as a machine-readable JSON array — the
//! format consumed by the repository's `BENCH_parallel.json` tooling.
//!
//! Statistical analysis, HTML reports, and regression detection from
//! upstream criterion are intentionally out of scope.

#![warn(missing_docs)]

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Fully-qualified benchmark id (`group/name` or bare name).
    pub id: String,
    /// Mean seconds per iteration.
    pub mean_s: f64,
    /// Fastest sample, seconds per iteration.
    pub min_s: f64,
    /// Slowest sample, seconds per iteration.
    pub max_s: f64,
    /// Iterations per sample after calibration.
    pub iters_per_sample: u64,
}

static RECORDS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id.to_string(), self.sample_size, &mut f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }
}

/// A named group of benchmarks (`group/name` ids).
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `self.name/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `self.name/id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(format!("{}/{}", self.name, id), self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier (`name`, `name/param`, or bare parameter).
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self { text: format!("{function_name}/{parameter}") }
    }

    /// Just the parameter (the group supplies the function name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self { text: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { text: s.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to benchmark closures; `iter` times the workload.
pub struct Bencher {
    sample_size: usize,
    result: Option<(f64, f64, f64, u64)>,
}

impl Bencher {
    /// Times `f`: calibrates an iteration count so a sample takes
    /// ≳1 ms, then records `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters = (iters * 4).min(1 << 20);
        }
        // Measure.
        let mut min = f64::INFINITY;
        let mut max: f64 = 0.0;
        let mut total = 0.0f64;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let per = t0.elapsed().as_secs_f64() / iters as f64;
            min = min.min(per);
            max = max.max(per);
            total += per;
        }
        self.result = Some((total / self.sample_size as f64, min, max, iters));
    }
}

fn run_one(id: String, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Honour cargo-bench filter arguments: any free argument must be a
    // substring of the id for the benchmark to run. Skip flags and the
    // value of `--bench-json` (a path, not a filter).
    let mut filters: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--bench-json" {
            let _ = args.next();
        } else if !a.starts_with('-') && !a.is_empty() {
            filters.push(a);
        }
    }
    if !filters.is_empty() && !filters.iter().any(|fl| id.contains(fl.as_str())) {
        return;
    }
    let mut b = Bencher { sample_size, result: None };
    f(&mut b);
    let (mean, min, max, iters) = b.result.expect("benchmark closure never called iter()");
    println!("{id:<50} mean {:>12}  min {:>12}  ({iters} iters/sample)", human(mean), human(min));
    RECORDS.lock().unwrap().push(BenchRecord {
        id,
        mean_s: mean,
        min_s: min,
        max_s: max,
        iters_per_sample: iters,
    });
}

fn human(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Writes all recorded results as JSON when requested via
/// `GEL_BENCH_JSON=<path>` or `--bench-json <path>`. Called by
/// [`criterion_main!`]; safe to call directly.
pub fn write_json_if_requested() {
    let mut path = std::env::var("GEL_BENCH_JSON").ok();
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--bench-json") {
        path = args.get(i + 1).cloned();
    }
    let Some(path) = path else { return };
    let records = RECORDS.lock().unwrap();
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"id\": \"{}\", \"mean_s\": {:.9}, \"min_s\": {:.9}, \"max_s\": {:.9}, \"iters_per_sample\": {}}}{}\n",
            r.id.replace('"', "'"),
            r.mean_s,
            r.min_s,
            r.max_s,
            r.iters_per_sample,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write bench JSON to {path}: {e}");
    } else {
        println!("wrote benchmark JSON to {path}");
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        }
    };
}

/// Declares the benchmark binary's `main`, running each group then
/// emitting JSON when requested.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
            $crate::write_json_if_requested();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("unit_test_spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let recs = RECORDS.lock().unwrap();
        let r = recs.iter().find(|r| r.id == "unit_test_spin").expect("recorded");
        assert!(r.mean_s > 0.0 && r.min_s <= r.mean_s && r.mean_s <= r.max_s);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
