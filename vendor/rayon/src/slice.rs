//! Parallel mutable slice splitting (`par_chunks_mut`).

use crate::{as_worker, chunk_bounds, effective_threads};

/// Extension trait providing `par_chunks_mut` on slices.
pub trait ParallelSliceMut<T: Send> {
    /// Splits into non-overlapping mutable chunks of `chunk_size`
    /// (last chunk may be shorter) that can be processed in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ChunksMut { chunks: self.chunks_mut(chunk_size).collect() }
    }
}

/// Parallel iterator over mutable chunks.
pub struct ChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ChunksMut<'a, T> {
    /// Pairs each chunk with its index.
    pub fn enumerate(self) -> EnumerateChunksMut<'a, T> {
        EnumerateChunksMut { chunks: self.chunks }
    }

    /// Processes every chunk, potentially in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a mut [T]) + Sync,
    {
        run_owned(self.chunks, &|(_i, chunk)| f(chunk));
    }
}

/// Enumerated variant of [`ChunksMut`].
pub struct EnumerateChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> EnumerateChunksMut<'a, T> {
    /// Processes every `(index, chunk)` pair, potentially in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a mut [T])) + Sync,
    {
        run_owned(self.chunks, &f);
    }
}

/// Splits `data` at the given ascending `bounds` and processes each
/// part, potentially in parallel. `bounds` must start at `0`, end at
/// `data.len()`, and be non-decreasing; part `t` is
/// `data[bounds[t]..bounds[t + 1]]` and is handed to `f` together with
/// its index. Unlike [`ParallelSliceMut::par_chunks_mut`] the split
/// points are caller-chosen, which lets callers align parts to
/// variable-width element boundaries (the WL signature arenas use
/// this). Not part of the real rayon API.
///
/// # Panics
/// Panics if `bounds` is not a valid partition of `0..data.len()`.
pub fn par_parts_mut<T, F>(data: &mut [T], bounds: &[usize], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(bounds.first() == Some(&0), "bounds must start at 0");
    assert!(bounds.last() == Some(&data.len()), "bounds must end at data.len()");
    let mut parts: Vec<&mut [T]> = Vec::with_capacity(bounds.len().saturating_sub(1));
    let mut rest = data;
    let mut prev = 0usize;
    for &b in &bounds[1..] {
        assert!(b >= prev, "bounds must be non-decreasing");
        let (part, tail) = rest.split_at_mut(b - prev);
        parts.push(part);
        rest = tail;
        prev = b;
    }
    run_owned(parts, &|(i, part)| f(i, part));
}

/// Distributes owned items across threads in contiguous index blocks.
fn run_owned<'a, T, F>(chunks: Vec<&'a mut [T]>, f: &F)
where
    T: Send,
    F: Fn((usize, &'a mut [T])) + Sync,
{
    let n = chunks.len();
    let threads = effective_threads(n);
    crate::note_dispatch(threads > 1);
    if threads <= 1 {
        for pair in chunks.into_iter().enumerate() {
            f(pair);
        }
        return;
    }
    let mut indexed: Vec<(usize, &'a mut [T])> = chunks.into_iter().enumerate().collect();
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads - 1);
        // Peel chunks off the tail for threads 1..T; run chunk 0 inline.
        for t in (1..threads).rev() {
            let (lo, _) = chunk_bounds(n, threads, t);
            let part = indexed.split_off(lo);
            handles.push(s.spawn(move || {
                as_worker(|| {
                    for pair in part {
                        f(pair);
                    }
                })
            }));
        }
        as_worker(|| {
            for pair in indexed.drain(..) {
                f(pair);
            }
        });
        for h in handles {
            h.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
        }
    });
}
