//! Indexed parallel iterators: random-access sources fanned out over
//! scoped threads, with order-preserving terminals.

use crate::{as_worker, chunk_bounds, effective_threads};

/// A parallel iterator over a random-access source.
///
/// Unlike rayon's driver/consumer architecture, this subset models every
/// pipeline as an indexed source (`len` + `get`) so terminals can split
/// the index space into contiguous per-thread chunks and reassemble
/// results in index order — which is what makes every parallel result in
/// this workspace bit-identical to the serial one.
pub trait ParallelIterator: Sized + Sync {
    /// The element type.
    type Item: Send;

    /// Number of items.
    fn par_len(&self) -> usize;

    /// Produces item `index`. Must be safe to call concurrently.
    fn par_get(&self, index: usize) -> Self::Item;

    /// Maps each item through `f`.
    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Sync,
    {
        Map { src: self, f }
    }

    /// Pairs each item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { src: self }
    }

    /// Applies `f` to every item (unordered effect, ordered schedule).
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        drive(&self, &|item| f(item));
    }

    /// Collects into `C` in index order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Sums all items.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + Send,
    {
        drive(&self, &|item| item).into_iter().sum()
    }

    /// True when any item satisfies `f`. Evaluates all items (no
    /// cross-thread short-circuit), so the answer is deterministic.
    fn any<F>(self, f: F) -> bool
    where
        F: Fn(Self::Item) -> bool + Sync,
    {
        drive(&self, &|item| f(item)).into_iter().any(|b| b)
    }

    /// Count of items satisfying `f`.
    fn count_where<F>(self, f: F) -> usize
    where
        F: Fn(Self::Item) -> bool + Sync,
    {
        drive(&self, &|item| usize::from(f(item))).into_iter().sum()
    }
}

/// Splits `iter`'s index space across threads, applies `f`, and returns
/// results in index order.
fn drive<I, T, F>(iter: &I, f: &F) -> Vec<T>
where
    I: ParallelIterator,
    T: Send,
    F: Fn(I::Item) -> T + Sync,
{
    let n = iter.par_len();
    let threads = effective_threads(n);
    crate::note_dispatch(threads > 1);
    if threads <= 1 {
        return (0..n).map(|i| f(iter.par_get(i))).collect();
    }
    let mut parts: Vec<Vec<T>> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let (lo, hi) = chunk_bounds(n, threads, t);
            handles.push(s.spawn(move || {
                as_worker(|| (lo..hi).map(|i| f(iter.par_get(i))).collect::<Vec<T>>())
            }));
        }
        for h in handles {
            parts.push(h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)));
        }
    });
    let mut out = Vec::with_capacity(n);
    for p in parts {
        out.extend(p);
    }
    out
}

/// Conversion from a parallel iterator, in index order.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Builds `Self` from the items of `iter`.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        drive(&iter, &|item| item)
    }
}

/// Types convertible into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// The resulting iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type.
    type Item: Send;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// Types whose references yield parallel iterators (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// The resulting iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type (a reference).
    type Item: Send + 'a;
    /// Borrowing conversion.
    fn par_iter(&'a self) -> Self::Iter;
}

/// Parallel iterator over an integer range.
pub struct RangePar<T> {
    start: T,
    len: usize,
}

macro_rules! impl_range_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Iter = RangePar<$t>;
            type Item = $t;
            fn into_par_iter(self) -> RangePar<$t> {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                RangePar { start: self.start, len }
            }
        }
        impl ParallelIterator for RangePar<$t> {
            type Item = $t;
            fn par_len(&self) -> usize {
                self.len
            }
            fn par_get(&self, index: usize) -> $t {
                self.start + index as $t
            }
        }
    )*};
}

impl_range_par!(usize, u32, u64);

/// Parallel iterator over a slice.
pub struct SlicePar<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SlicePar<'a, T> {
    type Item = &'a T;
    fn par_len(&self) -> usize {
        self.slice.len()
    }
    fn par_get(&self, index: usize) -> &'a T {
        &self.slice[index]
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = SlicePar<'a, T>;
    type Item = &'a T;
    fn par_iter(&'a self) -> SlicePar<'a, T> {
        SlicePar { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = SlicePar<'a, T>;
    type Item = &'a T;
    fn par_iter(&'a self) -> SlicePar<'a, T> {
        SlicePar { slice: self }
    }
}

/// `map` adaptor.
pub struct Map<S, F> {
    src: S,
    f: F,
}

impl<S, F, U> ParallelIterator for Map<S, F>
where
    S: ParallelIterator,
    U: Send,
    F: Fn(S::Item) -> U + Sync,
{
    type Item = U;
    fn par_len(&self) -> usize {
        self.src.par_len()
    }
    fn par_get(&self, index: usize) -> U {
        (self.f)(self.src.par_get(index))
    }
}

/// `enumerate` adaptor.
pub struct Enumerate<S> {
    src: S,
}

impl<S: ParallelIterator> ParallelIterator for Enumerate<S> {
    type Item = (usize, S::Item);
    fn par_len(&self) -> usize {
        self.src.par_len()
    }
    fn par_get(&self, index: usize) -> (usize, S::Item) {
        (index, self.src.par_get(index))
    }
}
