//! A small, dependency-free subset of the [rayon] data-parallelism API,
//! vendored so the workspace builds without network access.
//!
//! The implementation intentionally trades rayon's work-stealing pool
//! for scoped `std::thread` fan-out: every parallel operation splits its
//! index space into at most [`current_num_threads`] contiguous chunks
//! and joins them in order. This keeps the semantics this workspace
//! depends on:
//!
//! * **Deterministic ordering** — `map(..).collect::<Vec<_>>()` returns
//!   items in index order at every thread count, so refinement
//!   signatures, experiment tables, and matmul outputs are bit-identical
//!   whether run with 1 thread or 64.
//! * **`RAYON_NUM_THREADS`** is honoured, plus a programmatic override
//!   ([`set_num_threads`]) used by the benchmark harness to measure
//!   serial-vs-parallel speedups in-process.
//! * **Bounded nesting** — a parallel region spawned from inside another
//!   parallel worker runs serially (depth-1 parallelism), which is the
//!   behaviour the experiment suite wants: the 19 experiments fan out at
//!   the top and their inner kernels stay on one core each.
//!
//! Only the surface the workspace uses is provided: `par_iter` on
//! slices, `into_par_iter` on ranges, `map` / `enumerate` / `for_each` /
//! `collect` / `sum` / `any`, `par_chunks_mut`, and [`join`].
//!
//! [rayon]: https://docs.rs/rayon

#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod iter;
pub mod slice;

pub use slice::par_parts_mut;

/// The customary glob-import module, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
    pub use crate::slice::ParallelSliceMut;
}

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
static FALLBACK_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Number of threads parallel operations may use.
///
/// Resolution order: [`set_num_threads`] override, then the
/// `RAYON_NUM_THREADS` environment variable, then the machine's
/// available parallelism. The environment/parallelism fallback is
/// resolved once and cached: `env::var` plus `available_parallelism`
/// cost microseconds per call, and callers (e.g. the tensor kernels'
/// parallel-dispatch gate) query this on hot paths.
pub fn current_num_threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    let cached = FALLBACK_THREADS.load(Ordering::Relaxed);
    if cached > 0 {
        return cached;
    }
    let n = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
    FALLBACK_THREADS.store(n, Ordering::Relaxed);
    n
}

/// Overrides the thread count for subsequent parallel operations
/// (process-wide). Passing `0` restores the environment/default
/// resolution. Used by benchmarks to compare serial and parallel runs
/// in one process; not part of the real rayon API.
pub fn set_num_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// True when the current thread is itself a parallel worker; nested
/// parallel regions then degrade to serial execution.
pub(crate) fn in_worker() -> bool {
    IN_WORKER.with(|f| f.get())
}

/// Runs `body` with the worker flag set (so nested regions stay serial).
pub(crate) fn as_worker<R>(body: impl FnOnce() -> R) -> R {
    IN_WORKER.with(|f| {
        let prev = f.replace(true);
        let r = body();
        f.set(prev);
        r
    })
}

/// Effective parallel width for an operation over `n` items.
pub(crate) fn effective_threads(n: usize) -> usize {
    if n <= 1 || in_worker() {
        1
    } else {
        current_num_threads().min(n)
    }
}

#[cfg(feature = "obs")]
mod dispatch_counters {
    /// Parallel regions that actually fanned out over threads.
    pub static PARALLEL: gel_obs::Counter = gel_obs::Counter::new("rayon.dispatch.parallel");
    /// Parallel regions that fell through to serial execution (one
    /// thread configured, single item, or nested inside a worker).
    pub static SERIAL: gel_obs::Counter = gel_obs::Counter::new("rayon.dispatch.serial");
}

/// Records one parallel-or-serial dispatch decision. Every entry into
/// [`join`], iterator driving, or chunked slice processing makes
/// exactly one call, so `parallel + serial` is a thread-count-
/// independent invariant of a deterministic workload (only the split
/// between the two varies with `RAYON_NUM_THREADS`).
#[inline]
pub(crate) fn note_dispatch(parallel: bool) {
    #[cfg(feature = "obs")]
    if parallel {
        dispatch_counters::PARALLEL.incr();
    } else {
        dispatch_counters::SERIAL.incr();
    }
    #[cfg(not(feature = "obs"))]
    let _ = parallel;
}

/// Runs both closures, potentially in parallel, and returns both
/// results. Panics propagate.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if effective_threads(2) <= 1 {
        note_dispatch(false);
        return (a(), b());
    }
    note_dispatch(true);
    std::thread::scope(|s| {
        let hb = s.spawn(|| as_worker(b));
        let ra = as_worker(a);
        let rb = hb.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
        (ra, rb)
    })
}

/// Splits `0..n` into `threads` contiguous chunks; returns the bounds
/// of chunk `t`.
pub(crate) fn chunk_bounds(n: usize, threads: usize, t: usize) -> (usize, usize) {
    (n * t / threads, n * (t + 1) / threads)
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn identical_across_thread_counts() {
        let serial: Vec<usize> = {
            set_num_threads(1);
            (0..257usize).into_par_iter().map(|i| i * i).collect()
        };
        for t in [2, 3, 8] {
            set_num_threads(t);
            let par: Vec<usize> = (0..257usize).into_par_iter().map(|i| i * i).collect();
            assert_eq!(par, serial);
        }
        set_num_threads(0);
    }

    #[test]
    fn slice_par_iter_and_sum() {
        let data: Vec<u64> = (0..10_000).collect();
        let s: u64 = data.par_iter().map(|&x| x).sum();
        assert_eq!(s, 10_000 * 9_999 / 2);
    }

    #[test]
    fn par_chunks_mut_writes_all() {
        let mut data = vec![0u32; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x = i as u32 + 1;
            }
        });
        assert!(data.iter().all(|&x| x > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[100], 11);
    }

    #[test]
    fn par_parts_mut_respects_custom_bounds() {
        let mut data = vec![0u32; 10];
        // Uneven element-aligned parts: [0..3), [3..3), [3..10).
        par_parts_mut(&mut data, &[0, 3, 3, 10], |i, part| {
            for x in part.iter_mut() {
                *x = i as u32 + 1;
            }
        });
        assert_eq!(data, vec![1, 1, 1, 3, 3, 3, 3, 3, 3, 3]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn nested_regions_run_serially_without_deadlock() {
        let out: Vec<Vec<usize>> = (0..8usize)
            .into_par_iter()
            .map(|i| (0..8usize).into_par_iter().map(move |j| i * 8 + j).collect())
            .collect();
        assert_eq!(out[7][7], 63);
    }

    #[test]
    fn any_finds_match() {
        assert!((0..1000usize).into_par_iter().any(|i| i == 999));
        assert!(!(0..1000usize).into_par_iter().any(|i| i > 1000));
    }
}
